"""Ordering analysis: the paper's §6 trends and their crossovers.

The paper's headline findings are *orderings* of expected lifetimes
("A outlives B", written A → B):

1. ``S1SO → S0SO``;
2. ``S2PO`` and ``S1PO`` outlive all SO systems;
3. ``S2PO → S1PO`` when κ ≤ 0.9;
4. ``S0PO → S2PO`` except when κ = 0;

summarized as ``S0PO --κ>0--> S2PO --κ≤0.9--> S1PO → S1SO → S0SO``.

:func:`verify_paper_trends` checks each relation across an α grid;
:func:`kappa_crossover_s2_vs_s1` and :func:`kappa_crossover_s2_vs_s0`
locate the exact κ at which the S2PO curve crosses its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import AnalysisError
from .lifetimes import el_s0_po, el_s0_so, el_s1_po, el_s1_so, el_s2_po

#: α grid used by default (the paper's "realistic range", §5).
DEFAULT_ALPHAS = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2)


def lifetimes_at(
    alpha: float, kappa: float, launchpad_fraction: float = 1.0
) -> dict[str, float]:
    """EL of the five Figure-1 systems at one (α, κ) point."""
    return {
        "S0PO": el_s0_po(alpha),
        "S2PO": el_s2_po(alpha, kappa, launchpad_fraction=launchpad_fraction),
        "S1PO": el_s1_po(alpha),
        "S1SO": el_s1_so(alpha),
        "S0SO": el_s0_so(alpha),
    }


@dataclass(frozen=True)
class TrendReport:
    """Outcome of checking one §6 trend across the α grid."""

    name: str
    statement: str
    holds: bool
    detail: str


def verify_paper_trends(
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    kappa: float = 0.5,
    launchpad_fraction: float = 1.0,
) -> list[TrendReport]:
    """Check the four §6 trends on an α grid.

    ``kappa`` parameterizes the S2PO curve where a single value is
    needed; trends 3 and 4 use their own κ ranges per the paper's
    statements.
    """
    reports: list[TrendReport] = []

    # Trend 1: S1SO outlives S0SO.
    worst = min((el_s1_so(a) - el_s0_so(a)) for a in alphas)
    reports.append(
        TrendReport(
            name="T1",
            statement="S1SO -> S0SO",
            holds=worst > 0,
            detail=f"min EL(S1SO)-EL(S0SO) over grid = {worst:.4g}",
        )
    )

    # Trend 2: S2PO and S1PO outlive all SO systems (κ = 1 is S2PO's
    # worst case, so checking there proves the trend for every κ).
    margins = []
    for a in alphas:
        po_floor = min(
            el_s2_po(a, 1.0, launchpad_fraction=launchpad_fraction), el_s1_po(a)
        )
        so_ceiling = max(el_s1_so(a), el_s0_so(a))
        margins.append(po_floor - so_ceiling)
    worst = min(margins)
    reports.append(
        TrendReport(
            name="T2",
            statement="S2PO and S1PO outlive all SO systems",
            holds=worst > 0,
            detail=f"min (worst PO) - (best SO) over grid = {worst:.4g}",
        )
    )

    # Trend 3: S2PO outlives S1PO whenever κ <= 0.9 (EL(S2PO) is
    # decreasing in κ, so κ = 0.9 is the binding case).
    worst = min(
        el_s2_po(a, 0.9, launchpad_fraction=launchpad_fraction) - el_s1_po(a)
        for a in alphas
    )
    reports.append(
        TrendReport(
            name="T3",
            statement="S2PO -> S1PO when kappa <= 0.9",
            holds=worst > 0,
            detail=f"min EL(S2PO@0.9)-EL(S1PO) over grid = {worst:.4g}",
        )
    )

    # Trend 4: S0PO outlives S2PO for κ > 0 (checked on the paper's
    # κ decades; the crossover sits at κ = Θ(α), see
    # kappa_crossover_s2_vs_s0), and S2PO(κ=0) outlives S0PO.
    kappa_grid = (0.1, 0.25, 0.5, 0.75, 1.0)
    worst = min(
        el_s0_po(a) - el_s2_po(a, k, launchpad_fraction=launchpad_fraction)
        for a in alphas
        for k in kappa_grid
    )
    zero_margin = min(
        el_s2_po(a, 0.0, launchpad_fraction=launchpad_fraction) - el_s0_po(a)
        for a in alphas
    )
    reports.append(
        TrendReport(
            name="T4",
            statement="S0PO -> S2PO except when kappa = 0",
            holds=worst > 0 and zero_margin > 0,
            detail=(
                f"min EL(S0PO)-EL(S2PO) over grid x kappa>=0.1 = {worst:.4g}; "
                f"min EL(S2PO@0)-EL(S0PO) = {zero_margin:.4g}"
            ),
        )
    )
    return reports


def summary_chain_holds(
    alpha: float, kappa: float, launchpad_fraction: float = 1.0
) -> bool:
    """Whether ``S0PO ≥ S2PO ≥ S1PO ≥ S1SO ≥ S0SO`` holds at (α, κ).

    Valid for κ in the paper's condition range (0 < κ ≤ 0.9); outside it
    the chain's first or second link is not claimed.
    """
    el = lifetimes_at(alpha, kappa, launchpad_fraction)
    return el["S0PO"] >= el["S2PO"] >= el["S1PO"] >= el["S1SO"] >= el["S0SO"]


def _bisect_kappa(f, lo: float, hi: float, tol: float) -> float:
    """Find κ in [lo, hi] with ``f(κ) = 0`` (f monotone increasing)."""
    f_lo, f_hi = f(lo), f(hi)
    if f_lo > 0 or f_hi < 0:
        raise AnalysisError(
            f"no crossover within [{lo}, {hi}]: f({lo})={f_lo:.4g}, f({hi})={f_hi:.4g}"
        )
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if f(mid) <= 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def kappa_crossover_s2_vs_s1(
    alpha: float, launchpad_fraction: float = 1.0, tol: float = 1e-9
) -> float:
    """κ* above which S1PO outlives S2PO (the "κ ≤ 0.9" boundary).

    EL(S2PO) is strictly decreasing in κ while EL(S1PO) is constant, so
    the crossover is unique when it exists in [0, 1].
    """
    target = el_s1_po(alpha)

    def gap(kappa: float) -> float:
        return target - el_s2_po(alpha, kappa, launchpad_fraction=launchpad_fraction)

    return _bisect_kappa(gap, 0.0, 1.0, tol)


def kappa_crossover_s2_vs_s0(
    alpha: float, launchpad_fraction: float = 1.0, tol: float = 1e-9
) -> float:
    """κ* above which S0PO outlives S2PO.

    This sits at κ = Θ(α): even a weak indirect channel costs FORTRESS
    its edge over the 4-replica SMR system — the quantitative content of
    the paper's "except when κ = 0".
    """
    target = el_s0_po(alpha)

    def gap(kappa: float) -> float:
        return target - el_s2_po(alpha, kappa, launchpad_fraction=launchpad_fraction)

    return _bisect_kappa(gap, 0.0, 1.0, tol)
