"""Parameter conversions and hazard sequences of the attack model.

Collects the small, heavily reused formulas relating the paper's
parameters:

* χ — number of randomization keys (``2**entropy_bits``);
* ω — probes an attacker completes per unit time-step;
* α — per-step success probability of a direct attack on a *freshly*
  randomized node (Definition 6): ``α = ω/χ``;
* the SO hazard recurrence ``α_i = α_{i-1} / (1 − α_{i-1})`` — sampling
  without replacement shrinks the candidate pool by ω keys per step, so
  ``1/α_i = 1/α_{i-1} − 1``.

Note on the paper text: §4.2 states that α_i "decreases as i increases in
the SO case", but the recurrence derived from the paper's own pool-
shrinkage argument (and its §6 hazards ``4/(χ−i)``, ``1/(χ−i)``) makes
the hazard *increase*.  We implement the recurrence.  See DESIGN.md §1.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..errors import ConfigurationError


def chi_from_entropy(entropy_bits: int) -> int:
    """χ = 2**entropy_bits."""
    if entropy_bits < 1:
        raise ConfigurationError(f"entropy_bits must be >= 1, got {entropy_bits}")
    return 1 << entropy_bits


def alpha_from_omega(omega: float, chi: int) -> float:
    """α = min(ω/χ, 1): ω distinct probes against χ equally likely keys."""
    if omega < 0:
        raise ConfigurationError(f"omega must be non-negative, got {omega}")
    if chi < 2:
        raise ConfigurationError(f"chi must be >= 2, got {chi}")
    return min(omega / chi, 1.0)


def omega_from_alpha(alpha: float, chi: int) -> float:
    """ω = α·χ — the probe budget needed for per-step success α."""
    if not 0.0 <= alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
    if chi < 2:
        raise ConfigurationError(f"chi must be >= 2, got {chi}")
    return alpha * chi


def so_hazard(alpha: float, step: int) -> float:
    """α_i for an SO system: hazard of step ``step`` (1-based) given the
    attack has not yet succeeded.

    ``α_1 = α``; thereafter the candidate pool shrinks by ω keys per
    step: ``α_i = ω / (χ − (i−1)·ω) = α / (1 − (i−1)·α)``, capped at 1
    once the pool is exhausted.
    """
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    if step < 1:
        raise ConfigurationError(f"step must be >= 1, got {step}")
    denominator = 1.0 - (step - 1) * alpha
    if denominator <= alpha:
        return 1.0
    return alpha / denominator


def so_hazard_sequence(alpha: float, steps: int) -> Iterator[float]:
    """Yield ``α_1 .. α_steps`` via the recurrence (cheaper than the
    closed form in long scans, and exactly equivalent)."""
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    current = alpha
    for _ in range(steps):
        yield min(current, 1.0)
        if current >= 1.0:
            current = 1.0
        else:
            current = current / (1.0 - current)


def so_survival(alpha: float, t: int) -> float:
    """P(an SO-randomized node survives ``t`` whole steps of probing).

    Without replacement the key position is uniform over χ, so survival
    is linear: ``S(t) = max(0, 1 − t·α)``.
    """
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    if t < 0:
        raise ConfigurationError(f"t must be >= 0, got {t}")
    return max(0.0, 1.0 - t * alpha)


def so_exhaustion_step(alpha: float) -> int:
    """First step by which a without-replacement attack *must* have
    succeeded: ``⌈1/α⌉``."""
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    return math.ceil(1.0 / alpha - 1e-12)
