"""Absorbing Markov chain (AMC) solver.

The paper computes expected lifetimes with "Absorbing Markov Chain
methods (where state spaces are sufficiently small) or Monte-Carlo
simulations" (§5).  This module implements the standard AMC machinery:

given transient-to-transient transitions ``Q`` and transient-to-absorbing
transitions ``R``, the fundamental matrix ``N = (I − Q)^{-1}`` yields

* expected steps to absorption from each transient state: ``t = N·1``;
* absorption probabilities per absorbing state: ``B = N·R``;
* variance of the absorption time: ``(2N − I)·t − t∘t``.

Expected *lifetime* per Definition 7 counts whole steps **before** the
absorbing (compromising) step, i.e. ``t − 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import AnalysisError

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class AbsorptionResult:
    """Solution of an absorbing Markov chain.

    Attributes
    ----------
    expected_steps:
        Expected number of steps until absorption, per transient state
        (the absorbing step itself is counted).
    variance_steps:
        Variance of that step count, per transient state.
    absorption_probabilities:
        ``(n_transient, n_absorbing)`` matrix of absorption probabilities.
    """

    expected_steps: np.ndarray
    variance_steps: np.ndarray
    absorption_probabilities: np.ndarray


class AbsorbingMarkovChain:
    """An AMC specified by its ``Q`` (transient) and ``R`` (absorbing) blocks.

    Parameters
    ----------
    Q:
        ``(n, n)`` transient-to-transient transition probabilities.
    R:
        ``(n, m)`` transient-to-absorbing transition probabilities.
    transient_labels / absorbing_labels:
        Optional human-readable state names.
    """

    def __init__(
        self,
        Q: np.ndarray,
        R: np.ndarray,
        transient_labels: Optional[Sequence[str]] = None,
        absorbing_labels: Optional[Sequence[str]] = None,
    ) -> None:
        Q = np.asarray(Q, dtype=float)
        R = np.asarray(R, dtype=float)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise AnalysisError(f"Q must be square, got shape {Q.shape}")
        if R.ndim != 2 or R.shape[0] != Q.shape[0]:
            raise AnalysisError(
                f"R must have one row per transient state, got {R.shape} vs {Q.shape}"
            )
        if (Q < -_TOLERANCE).any() or (R < -_TOLERANCE).any():
            raise AnalysisError("transition probabilities must be non-negative")
        rows = Q.sum(axis=1) + R.sum(axis=1)
        if not np.allclose(rows, 1.0, atol=1e-8):
            raise AnalysisError(f"each row of [Q|R] must sum to 1; row sums are {rows}")
        if not (R > 0.0).any():
            raise AnalysisError("chain has no path to absorption")
        self.Q = Q
        self.R = R
        self.n_transient = Q.shape[0]
        self.n_absorbing = R.shape[1]
        self.transient_labels = (
            list(transient_labels)
            if transient_labels is not None
            else [f"t{i}" for i in range(self.n_transient)]
        )
        self.absorbing_labels = (
            list(absorbing_labels)
            if absorbing_labels is not None
            else [f"a{j}" for j in range(self.n_absorbing)]
        )
        if len(self.transient_labels) != self.n_transient:
            raise AnalysisError("wrong number of transient labels")
        if len(self.absorbing_labels) != self.n_absorbing:
            raise AnalysisError("wrong number of absorbing labels")
        self._fundamental: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def fundamental_matrix(self) -> np.ndarray:
        """``N = (I − Q)^{-1}`` (cached)."""
        if self._fundamental is None:
            identity = np.eye(self.n_transient)
            try:
                self._fundamental = np.linalg.solve(identity - self.Q, identity)
            except np.linalg.LinAlgError as exc:
                raise AnalysisError(
                    "I - Q is singular: some transient state cannot reach absorption"
                ) from exc
        return self._fundamental

    def solve(self) -> AbsorptionResult:
        """Compute expected steps, variances and absorption probabilities."""
        N = self.fundamental_matrix
        t = N @ np.ones(self.n_transient)
        variance = (2.0 * N - np.eye(self.n_transient)) @ t - t * t
        B = N @ self.R
        return AbsorptionResult(
            expected_steps=t,
            variance_steps=np.maximum(variance, 0.0),
            absorption_probabilities=B,
        )

    # ------------------------------------------------------------------
    def expected_steps_from(self, state: int | str = 0) -> float:
        """Expected steps to absorption starting from ``state``."""
        index = self._state_index(state)
        return float(self.solve().expected_steps[index])

    def expected_lifetime_from(self, state: int | str = 0) -> float:
        """Expected *whole* steps before the absorbing step (Definition 7)."""
        return self.expected_steps_from(state) - 1.0

    def absorption_distribution(self, state: int | str = 0) -> dict[str, float]:
        """Probability of ending in each absorbing state from ``state``."""
        index = self._state_index(state)
        row = self.solve().absorption_probabilities[index]
        return dict(zip(self.absorbing_labels, (float(x) for x in row)))

    def survival_curve(self, steps: int, state: int | str = 0) -> np.ndarray:
        """``S(t)`` for ``t = 1..steps``: probability of still being
        transient after ``t`` steps, starting from ``state``."""
        if steps < 1:
            raise AnalysisError(f"steps must be >= 1, got {steps}")
        index = self._state_index(state)
        distribution = np.zeros(self.n_transient)
        distribution[index] = 1.0
        curve = np.empty(steps)
        for t in range(steps):
            distribution = distribution @ self.Q
            curve[t] = distribution.sum()
        return curve

    def _state_index(self, state: int | str) -> int:
        if isinstance(state, str):
            try:
                return self.transient_labels.index(state)
            except ValueError:
                raise AnalysisError(f"unknown transient state {state!r}") from None
        if not 0 <= state < self.n_transient:
            raise AnalysisError(f"transient state index {state} out of range")
        return state


def geometric_chain(q: float) -> AbsorbingMarkovChain:
    """The one-transient-state chain: compromise w.p. ``q`` each step.

    Expected lifetime is ``(1 − q)/q`` — the memoryless special case all
    PO systems reduce to when the per-step compromise probability is
    state-independent.
    """
    if not 0.0 < q <= 1.0:
        raise AnalysisError(f"per-step probability must be in (0, 1], got {q}")
    return AbsorbingMarkovChain(
        Q=np.array([[1.0 - q]]),
        R=np.array([[q]]),
        transient_labels=["alive"],
        absorbing_labels=["compromised"],
    )
