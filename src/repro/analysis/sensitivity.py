"""Sensitivity analysis: which parameter buys the defender the most?

For design decisions the *elasticity* of the expected lifetime —
``d log EL / d log θ`` — says how many percent of lifetime one percent
of a parameter is worth.  Closed-form hazards make the PO elasticities
exact in the small-α limit:

* S1PO: elasticity wrt α is −1 (EL ∝ 1/α);
* S0PO: −2 (EL ∝ 1/α², the diversity bonus);
* S2PO: −1 wrt α and −κα/q wrt κ — ≈ −1 when the indirect route
  dominates, → 0 as κ → 0.

The generic :func:`elasticity` estimator (central log-difference) works
on any EL function, so ablations can rank parameters uniformly.

Systems without a closed form (S2SO above all) get the same treatment
through :func:`mc_elasticity`: EL at the two perturbed points is
estimated by the Monte-Carlo engine with CI-width-targeted early
stopping, using a *common* seed at both points (common random numbers)
so most sampling noise cancels out of the log-difference.
"""

from __future__ import annotations

import math
from typing import Callable

from ..core.specs import SystemSpec
from ..errors import AnalysisError
from .lifetimes import el_s2_po, per_step_compromise_s2_po


def elasticity(
    fn: Callable[[float], float],
    at: float,
    rel_step: float = 1e-4,
) -> float:
    """Numeric elasticity ``d log fn / d log x`` at ``x = at``.

    Uses a central difference in log space; ``fn`` must be positive in a
    neighbourhood of ``at``.
    """
    if at <= 0:
        raise AnalysisError(f"elasticity needs a positive point, got {at}")
    if not 0 < rel_step < 0.5:
        raise AnalysisError(f"rel_step must be in (0, 0.5), got {rel_step}")
    hi = at * (1.0 + rel_step)
    lo = at * (1.0 - rel_step)
    f_hi, f_lo = fn(hi), fn(lo)
    if f_hi <= 0 or f_lo <= 0:
        raise AnalysisError("function must be positive around the point")
    return (math.log(f_hi) - math.log(f_lo)) / (math.log(hi) - math.log(lo))


def s2_po_alpha_elasticity(alpha: float, kappa: float) -> float:
    """Elasticity of EL(S2PO) wrt α (numeric; ≈ −1 in the κα regime,
    → −2 as κ → 0 where the Θ(α²) launch-pad route dominates)."""
    return elasticity(lambda a: el_s2_po(a, kappa), alpha)


def s2_po_kappa_elasticity(alpha: float, kappa: float) -> float:
    """Elasticity of EL(S2PO) wrt κ.

    Closed form in the small-q limit: ``−κ·α/q`` where q is the per-step
    compromise probability — the share of the hazard the indirect route
    owns.  Computed numerically for exactness.
    """
    if kappa <= 0:
        raise AnalysisError("kappa elasticity undefined at kappa = 0 (log scale)")
    return elasticity(lambda k: el_s2_po(alpha, min(k, 1.0)), kappa)


def mc_elasticity(
    spec_at: Callable[[float], SystemSpec],
    at: float,
    rel_step: float = 0.05,
    *,
    precision: float = 0.005,
    seed: int = 0,
    max_trials: int = 2_000_000,
) -> float:
    """Monte-Carlo elasticity ``d log EL / d log x`` at ``x = at``.

    ``spec_at`` maps a parameter value to a spec; EL at ``at·(1±δ)`` is
    estimated by the vectorized engine with early stopping at the given
    relative CI half-width.  Both points share one seed, so the paired
    estimates ride the same random-number stream and their common noise
    cancels in the log-difference (variance reduction that makes a
    finite-difference on sampled values usable at all).

    The Monte-Carlo step ``rel_step`` is deliberately coarser than the
    analytic default: the residual noise of the two estimates must stay
    small against the EL change across the interval.
    """
    from ..mc.montecarlo import mc_expected_lifetime  # deferred: avoids cycle

    if at <= 0:
        raise AnalysisError(f"elasticity needs a positive point, got {at}")
    if not 0 < rel_step < 0.5:
        raise AnalysisError(f"rel_step must be in (0, 0.5), got {rel_step}")
    hi = at * (1.0 + rel_step)
    lo = at * (1.0 - rel_step)
    estimates = [
        mc_expected_lifetime(
            spec_at(x), seed=seed, precision=precision, max_trials=max_trials
        )
        for x in (hi, lo)
    ]
    for estimate in estimates:
        if not estimate.converged:
            raise AnalysisError(
                f"MC elasticity needs precision {precision:g} but "
                f"{estimate.label} did not converge within {max_trials} "
                "trials; raise max_trials or loosen precision"
            )
    el_hi, el_lo = estimates[0].mean, estimates[1].mean
    if el_hi <= 0 or el_lo <= 0:
        raise AnalysisError("expected lifetime must be positive around the point")
    return (math.log(el_hi) - math.log(el_lo)) / (math.log(hi) - math.log(lo))


def s2_so_alpha_elasticity(
    alpha: float, kappa: float, *, precision: float = 0.005, seed: int = 0
) -> float:
    """Elasticity of EL(S2SO) wrt α, by Monte-Carlo (no closed form)."""
    from ..core.specs import s2  # deferred: avoids cycle
    from ..randomization.obfuscation import Scheme

    return mc_elasticity(
        lambda a: s2(Scheme.SO, alpha=a, kappa=kappa),
        alpha,
        precision=precision,
        seed=seed,
    )


def s2_so_kappa_elasticity(
    alpha: float, kappa: float, *, precision: float = 0.005, seed: int = 0
) -> float:
    """Elasticity of EL(S2SO) wrt κ, by Monte-Carlo (no closed form).

    The perturbation interval shrinks near κ = 1 so the upper point
    never clips at the domain boundary (clipping would silently bias
    the log-difference); at κ = 1 itself no upward perturbation exists
    and the elasticity is undefined.
    """
    from ..core.specs import s2  # deferred: avoids cycle
    from ..randomization.obfuscation import Scheme

    if kappa <= 0:
        raise AnalysisError("kappa elasticity undefined at kappa = 0 (log scale)")
    if kappa >= 1.0:
        raise AnalysisError(
            "kappa elasticity undefined at kappa = 1 (no upward perturbation)"
        )
    rel_step = min(0.05, (1.0 - kappa) / kappa)
    return mc_elasticity(
        lambda k: s2(Scheme.SO, alpha=alpha, kappa=k),
        kappa,
        rel_step=rel_step,
        precision=precision,
        seed=seed,
    )


def indirect_route_share(alpha: float, kappa: float) -> float:
    """Fraction of S2PO's per-step hazard owned by the indirect route —
    the defender's guide to whether hardening detection (κ) or
    randomization entropy (α) pays more."""
    q = per_step_compromise_s2_po(alpha, kappa)
    return (kappa * alpha) / q if q > 0 else 0.0
