"""Sensitivity analysis: which parameter buys the defender the most?

For design decisions the *elasticity* of the expected lifetime —
``d log EL / d log θ`` — says how many percent of lifetime one percent
of a parameter is worth.  Closed-form hazards make the PO elasticities
exact in the small-α limit:

* S1PO: elasticity wrt α is −1 (EL ∝ 1/α);
* S0PO: −2 (EL ∝ 1/α², the diversity bonus);
* S2PO: −1 wrt α and −κα/q wrt κ — ≈ −1 when the indirect route
  dominates, → 0 as κ → 0.

The generic :func:`elasticity` estimator (central log-difference) works
on any EL function, so ablations can rank parameters uniformly.
"""

from __future__ import annotations

import math
from typing import Callable

from ..errors import AnalysisError
from .lifetimes import el_s2_po, per_step_compromise_s2_po


def elasticity(
    fn: Callable[[float], float],
    at: float,
    rel_step: float = 1e-4,
) -> float:
    """Numeric elasticity ``d log fn / d log x`` at ``x = at``.

    Uses a central difference in log space; ``fn`` must be positive in a
    neighbourhood of ``at``.
    """
    if at <= 0:
        raise AnalysisError(f"elasticity needs a positive point, got {at}")
    if not 0 < rel_step < 0.5:
        raise AnalysisError(f"rel_step must be in (0, 0.5), got {rel_step}")
    hi = at * (1.0 + rel_step)
    lo = at * (1.0 - rel_step)
    f_hi, f_lo = fn(hi), fn(lo)
    if f_hi <= 0 or f_lo <= 0:
        raise AnalysisError("function must be positive around the point")
    return (math.log(f_hi) - math.log(f_lo)) / (math.log(hi) - math.log(lo))


def s2_po_alpha_elasticity(alpha: float, kappa: float) -> float:
    """Elasticity of EL(S2PO) wrt α (numeric; ≈ −1 in the κα regime,
    → −2 as κ → 0 where the Θ(α²) launch-pad route dominates)."""
    return elasticity(lambda a: el_s2_po(a, kappa), alpha)


def s2_po_kappa_elasticity(alpha: float, kappa: float) -> float:
    """Elasticity of EL(S2PO) wrt κ.

    Closed form in the small-q limit: ``−κ·α/q`` where q is the per-step
    compromise probability — the share of the hazard the indirect route
    owns.  Computed numerically for exactness.
    """
    if kappa <= 0:
        raise AnalysisError("kappa elasticity undefined at kappa = 0 (log scale)")
    return elasticity(lambda k: el_s2_po(alpha, min(k, 1.0)), kappa)


def indirect_route_share(alpha: float, kappa: float) -> float:
    """Fraction of S2PO's per-step hazard owned by the indirect route —
    the defender's guide to whether hardening detection (κ) or
    randomization entropy (α) pays more."""
    q = per_step_compromise_s2_po(alpha, kappa)
    return (kappa * alpha) / q if q > 0 else 0.0
