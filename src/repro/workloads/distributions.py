"""Key-popularity distributions for workload generation.

Real KV workloads are rarely uniform; a small set of hot keys receives
most of the traffic.  :class:`ZipfKeys` provides the standard skewed
distribution (used by the open-loop client and the richer body
factories), :class:`UniformKeys` the baseline.
"""

from __future__ import annotations

import bisect
import itertools
import random
from abc import ABC, abstractmethod

from ..errors import ConfigurationError


class KeyDistribution(ABC):
    """Samples key names for a KV workload."""

    @abstractmethod
    def sample(self, rng: random.Random) -> str:
        """Return one key name."""


class UniformKeys(KeyDistribution):
    """Every key equally likely."""

    def __init__(self, n_keys: int = 64, prefix: str = "k") -> None:
        if n_keys < 1:
            raise ConfigurationError(f"need at least one key, got {n_keys}")
        self.n_keys = n_keys
        self.prefix = prefix

    def sample(self, rng: random.Random) -> str:
        return f"{self.prefix}{rng.randrange(self.n_keys)}"


class ZipfKeys(KeyDistribution):
    """Zipf(s)-distributed key popularity over ``n_keys`` keys.

    Key ``i`` (0-based) has probability proportional to ``1/(i+1)^s``.
    Sampling inverts the precomputed CDF with a binary search — O(log n)
    per draw, no scipy dependency.
    """

    def __init__(self, n_keys: int = 64, s: float = 1.0, prefix: str = "k") -> None:
        if n_keys < 1:
            raise ConfigurationError(f"need at least one key, got {n_keys}")
        if s < 0:
            raise ConfigurationError(f"Zipf exponent must be >= 0, got {s}")
        self.n_keys = n_keys
        self.s = s
        self.prefix = prefix
        weights = [1.0 / (i + 1) ** s for i in range(n_keys)]
        total = sum(weights)
        self._cdf = list(itertools.accumulate(w / total for w in weights))
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self, rng: random.Random) -> str:
        index = bisect.bisect_left(self._cdf, rng.random())
        return f"{self.prefix}{min(index, self.n_keys - 1)}"

    def probability(self, index: int) -> float:
        """P(key ``index``), for tests and analysis."""
        if not 0 <= index < self.n_keys:
            raise ConfigurationError(f"key index {index} out of range")
        low = self._cdf[index - 1] if index > 0 else 0.0
        return self._cdf[index] - low


def kv_body_factory(
    key_distribution: KeyDistribution,
    read_ratio: float = 0.7,
):
    """Build a request-body factory with the given read/write mix.

    Returns a callable compatible with
    :class:`repro.core.clients.WorkloadClient`'s ``body_factory``.
    """
    if not 0.0 <= read_ratio <= 1.0:
        raise ConfigurationError(f"read_ratio must be in [0, 1], got {read_ratio}")

    def factory(i: int, rng: random.Random) -> dict:
        key = key_distribution.sample(rng)
        if rng.random() < read_ratio:
            return {"op": "get", "key": key}
        if i % 5 == 0:
            return {"op": "incr", "key": key}
        return {"op": "put", "key": key, "value": i}

    return factory
