"""Open-loop workload client.

The closed-loop :class:`~repro.core.clients.WorkloadClient` issues one
request at a time; an **open-loop** client issues requests on a Poisson
arrival process regardless of completions — the standard way to study a
service under offered load, and to observe queueing when the primary is
busy crashing under probes.  Requests are tracked concurrently, each
validated like the closed-loop client validates (over-signed envelopes
for FORTRESS, one authentic signature for PB, ``f + 1`` matching for
SMR).
"""

from __future__ import annotations

import itertools
from typing import Mapping, Optional

from ..core.clients import BodyFactory, default_body_factory
from ..crypto.signatures import Signed, SignatureAuthority
from ..net.message import Message
from ..net.network import Network
from ..proxy.proxy import CLIENT_REQUEST, CLIENT_RESPONSE
from ..replication.primary_backup import REQUEST, SERVER_RESPONSE
from ..sim.engine import Simulator
from ..sim.process import SimProcess

_OPEN_SEQ = itertools.count(1)


class OpenLoopClient(SimProcess):
    """Poisson-arrival client with concurrent outstanding requests.

    Parameters
    ----------
    sim, network, authority:
        Simulation substrates.
    mode:
        ``"fortress"``, ``"pb"`` or ``"smr"``.
    targets:
        Proxy addresses (fortress) or server addresses (pb/smr).
    arrival_rate:
        Mean requests per simulated time unit.
    request_timeout:
        Deadline after which an outstanding request counts as failed
        (open-loop clients do not retry; they measure).
    f:
        Fault threshold for SMR voting.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        authority: SignatureAuthority,
        mode: str,
        targets: list[str],
        arrival_rate: float = 10.0,
        request_timeout: float = 1.0,
        f: int = 1,
        name: Optional[str] = None,
        body_factory: BodyFactory = default_body_factory,
    ) -> None:
        if mode not in ("fortress", "pb", "smr"):
            raise ValueError(f"unknown client mode {mode!r}")
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
        super().__init__(sim, name or f"openloop-{next(_OPEN_SEQ)}", respawn_delay=None)
        self.network = network
        self.authority = authority
        self.mode = mode
        self.targets = list(targets)
        self.arrival_rate = arrival_rate
        self.request_timeout = request_timeout
        self.f = f
        self.body_factory = body_factory
        self._rng = sim.rng.stream(f"{self.name}:openloop")
        self._outstanding: dict[str, dict] = {}
        self._op_index = 0
        self._running = False
        self.requests_sent = 0
        self.responses_ok = 0
        self.responses_corrupted = 0
        self.timeouts = 0
        self.latencies: list[float] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the arrival process."""
        if not self._running:
            self._running = True
            self.sim.schedule(self._next_gap(), self._arrive)

    def stop_workload(self) -> None:
        """Stop generating arrivals (outstanding requests still resolve)."""
        self._running = False

    def _next_gap(self) -> float:
        return self._rng.expovariate(self.arrival_rate)

    @property
    def in_flight(self) -> int:
        """Currently outstanding requests."""
        return len(self._outstanding)

    # ------------------------------------------------------------------
    def _arrive(self) -> None:
        if not self._running:
            return
        self._op_index += 1
        request_id = f"{self.name}-r{self._op_index}"
        body = self.body_factory(self._op_index, self._rng)
        self._outstanding[request_id] = {
            "sent_at": self.sim.now,
            "votes": {},
        }
        self.requests_sent += 1
        if self.mode == "fortress":
            payload = {"request_id": request_id, "client": self.name, "body": body}
            mtype = CLIENT_REQUEST
        else:
            payload = {
                "request_id": request_id,
                "client": self.name,
                "reply_to": [self.name],
                "body": body,
            }
            mtype = REQUEST
        for target in self.targets:
            if self.network.knows(target):
                self.network.send(Message(self.name, target, mtype, payload))
        self.sim.schedule(self.request_timeout, self._expire, request_id)
        self.sim.schedule(self._next_gap(), self._arrive)

    def _expire(self, request_id: str) -> None:
        if self._outstanding.pop(request_id, None) is not None:
            self.timeouts += 1

    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        if message.mtype == CLIENT_RESPONSE and self.mode == "fortress":
            envelope = message.payload.get("envelope")
            if isinstance(envelope, Signed) and self.authority.verify_oversigned(
                envelope
            ):
                inner = envelope.payload
                self._complete(inner.payload["request_id"], inner.payload["response"])
        elif message.mtype == SERVER_RESPONSE and self.mode in ("pb", "smr"):
            signed = message.payload.get("signed")
            if not isinstance(signed, Signed) or not self.authority.verify(signed):
                return
            body = signed.payload
            if self.mode == "pb":
                self._complete(body["request_id"], body["response"])
            else:
                self._vote(body)

    def _vote(self, body: Mapping) -> None:
        entry = self._outstanding.get(body["request_id"])
        if entry is None:
            return
        fingerprint = repr(
            sorted((str(k), repr(v)) for k, v in body["response"].items())
        )
        entry["votes"][body["index"]] = (fingerprint, body["response"])
        counts: dict[str, int] = {}
        for fp, _ in entry["votes"].values():
            counts[fp] = counts.get(fp, 0) + 1
        for fp, count in counts.items():
            if count >= self.f + 1:
                response = next(r for f2, r in entry["votes"].values() if f2 == fp)
                self._complete(body["request_id"], response)
                return

    def _complete(self, request_id: str, response: Mapping) -> None:
        entry = self._outstanding.pop(request_id, None)
        if entry is None:
            return
        self.latencies.append(self.sim.now - entry["sent_at"])
        if response.get("error") == "__corrupted__":
            self.responses_corrupted += 1
        else:
            self.responses_ok += 1

    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of observed latencies."""
        if not self.latencies:
            raise ValueError("no completed requests yet")
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[index]
