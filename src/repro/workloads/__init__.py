"""Workload generation: key distributions, open-loop Poisson clients."""

from .distributions import KeyDistribution, UniformKeys, ZipfKeys, kv_body_factory
from .openloop import OpenLoopClient

__all__ = [
    "KeyDistribution",
    "UniformKeys",
    "ZipfKeys",
    "kv_body_factory",
    "OpenLoopClient",
]
