"""Shared structured logging for the whole package.

Every module logs through a child of the ``repro`` logger
(``get_logger(__name__)``), so one :func:`configure_logging` call wires
the entire stack: ``-v`` lifts campaign/supervision/cache chatter to
INFO, ``-vv`` to DEBUG, ``-q`` silences everything below ERROR.

Library rule: *warnings that tests and callers rely on catching stay
`warnings.warn`* (quarantine notices, pool fallbacks, precision
refusals); the logger carries operational narration — retries, strikes,
cache traffic — that a human debugging a campaign wants but a caller
should never have to filter.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

_ROOT_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The package logger, or a namespaced child for ``name``.

    Pass ``__name__``; dotted module paths already under ``repro.`` are
    used as-is, anything else is parented beneath it.
    """
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def verbosity_to_level(verbosity: int) -> int:
    """Map a ``-q``/``-v`` count to a stdlib logging level.

    ``-1`` (quiet) → ERROR, ``0`` → WARNING, ``1`` → INFO, ``>=2`` → DEBUG.
    """
    if verbosity < 0:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Install (or re-level) the package's single stderr handler.

    Idempotent: repeated calls re-use the handler and only adjust the
    level, so tests and embedding applications can call it freely
    without stacking duplicate outputs.  The handler is attached to the
    ``repro`` logger only — the root logger (and other libraries) are
    left alone, and propagation stays on so capturing harnesses (pytest
    ``caplog``) keep seeing records.
    """
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(verbosity_to_level(verbosity))
    handler = next(
        (h for h in logger.handlers if getattr(h, "_repro_handler", False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler._repro_handler = True
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    return logger
