"""On-disk content-addressed result store.

Entries live under ``root/<key[:2]>/<key>.json`` (two-level fan-out so
directories stay small on big campaign sweeps).  Writes go through
:func:`atomic_write_text` — a temp file in the destination directory
renamed into place with :func:`os.replace` — so a crash mid-write can
never leave a half-entry behind; readers either see the whole entry or
nothing.  Anything unreadable (truncated file, bad JSON, key mismatch
from a hand-edited entry) is treated as a **miss**, never an error:
the cache must only ever make campaigns faster, not able to fail.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Optional

from ..log import get_logger
from .keys import ENGINE_VERSION, cache_key

logger = get_logger(__name__)


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file is created in ``path``'s directory so the final rename
    never crosses a filesystem boundary.  On any failure the temp file
    is removed and the original ``path`` (if any) is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ResultCache:
    """Content-addressed cache of finished campaign-point results.

    Parameters
    ----------
    root:
        Directory to keep entries under (created lazily on first store).
    version:
        Engine version folded into every key; defaults to
        :data:`~repro.cache.keys.ENGINE_VERSION`.  Entries written under
        a different version simply never match — bumping the version is
        how engine changes invalidate the whole cache at once.

    The ``hits`` / ``misses`` counters tally :meth:`lookup` outcomes so
    campaign records can report how much work the cache saved.
    """

    def __init__(self, root: Path | str, version: int = ENGINE_VERSION) -> None:
        self.root = Path(root)
        self.version = version
        self.hits = 0
        self.misses = 0
        self.store_failures = 0

    @property
    def stats(self) -> dict:
        """Counters for campaign records: lookups and suppressed failures."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "store_failures": self.store_failures,
        }

    # ------------------------------------------------------------------
    def key_for(self, payload: dict) -> str:
        """Content hash of ``payload`` with the engine version folded in."""
        keyed = dict(payload)
        keyed["engine_version"] = self.version
        return cache_key(keyed)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[Any]:
        """Stored payload for ``key``, or ``None`` on a miss.

        Corrupt, truncated, or otherwise unreadable entries count as
        misses: a failed read must degrade to recomputation, never
        propagate as an error.
        """
        try:
            text = self._path(key).read_text(encoding="utf-8")
            entry = json.loads(text)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def store(self, key: str, payload: Any) -> None:
        """Persist ``payload`` under ``key`` (best-effort).

        Storage failures (read-only cache dir, disk full) are reported
        as a warning and otherwise ignored — the computed result is
        already in hand, so a failed write must not sink the campaign.
        The warning fires once per cache instance (a read-only dir would
        otherwise warn for every grid point of a sweep); later failures
        are tallied silently in :attr:`stats` as ``store_failures``.
        """
        entry = {"key": key, "engine_version": self.version, "payload": payload}
        try:
            atomic_write_text(self._path(key), json.dumps(entry))
        except OSError as exc:
            self.store_failures += 1
            if self.store_failures == 1:
                warnings.warn(
                    f"result cache write failed under {self.root}: {exc}; "
                    "continuing without caching (further failures this "
                    "run are counted, not warned)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                logger.debug("cache write failed for %s: %s", key[:12], exc)

    # ------------------------------------------------------------------
    def _entry_paths(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def info(self) -> dict:
        """Inventory of the on-disk store: entries, bytes, versions.

        Unreadable entries are counted under a ``"corrupt"`` bucket
        rather than raised — the same miss-not-error stance as
        :meth:`lookup`.
        """
        entries = 0
        total_bytes = 0
        versions: dict[str, int] = {}
        for path in self._entry_paths():
            entries += 1
            try:
                total_bytes += path.stat().st_size
                entry = json.loads(path.read_text(encoding="utf-8"))
                version = str(entry["engine_version"])
            except (OSError, ValueError, KeyError, TypeError):
                version = "corrupt"
            versions[version] = versions.get(version, 0) + 1
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "engine_version": self.version,
            "by_version": dict(sorted(versions.items())),
        }

    def prune(self) -> dict:
        """Delete entries not written under the current engine version.

        Stale-version and corrupt entries can never hit again (keys fold
        the version in), so they only cost disk; pruning removes them
        and reports what went.  Returns ``{"removed": n, "bytes": n}``.
        """
        removed = 0
        freed = 0
        for path in self._entry_paths():
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                stale = entry["engine_version"] != self.version
            except (OSError, ValueError, KeyError, TypeError):
                stale = True
            if not stale:
                continue
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        logger.info("cache prune removed %d entries (%d bytes)", removed, freed)
        return {"removed": removed, "bytes": freed}
