"""Content-addressed cache keys: canonical JSON × SHA-256.

A cache key must depend on *everything* that determines a campaign
point's outcomes and on *nothing* else — in particular never on the
fan-out configuration (``workers``, ``batch_size``), which the engine
guarantees is outcome-invariant.  The recipe, following the recursive
sorted-JSON-hash idiom of build-system content caches:

1. reduce the describing payload to plain JSON types with
   :func:`jsonable` (dataclass specs via their ``as_dict``, enum
   members by name, tuples as lists);
2. serialize with :func:`canonical_json` — sorted keys, no whitespace —
   so logically equal payloads are *textually* equal;
3. SHA-256 the canonical text (:func:`cache_key`).

:data:`ENGINE_VERSION` participates in every key (see
:meth:`repro.cache.store.ResultCache.key_for`): bumping it orphans all
prior entries at once, which is the invalidation story for engine
changes that alter protocol outcomes without touching any spec field.
"""

from __future__ import annotations

import enum
import hashlib
import json
from typing import Any, Mapping, Sequence

from ..errors import ConfigurationError

#: Version of the protocol-evaluation engine for cache-keying purposes.
#: **Bump this whenever a change alters protocol outcomes for the same
#: specs and seeds** (the golden-outcome batteries in
#: ``tests/test_fast_path.py`` referee exactly that property) — stale
#: entries keyed under the old version become unreachable, never
#: silently wrong.
#:
#: Version 2: protocol outcomes gained the ``events`` field (simulator
#: events executed per run), so version-1 cached blocks no longer decode.
#:
#: Version 3: protocol outcomes gained the per-run telemetry sample
#: (``metrics``).  Version-2 blocks would still decode (the field is
#: optional), but replaying them would silently undercount campaign
#: counter totals, so they are retired instead.
ENGINE_VERSION = 3


def jsonable(value: Any) -> Any:
    """Reduce ``value`` to plain JSON types, deterministically.

    Handles the vocabulary cache payloads are built from: JSON scalars,
    mappings, sequences, enum members (by name), and spec dataclasses
    exposing ``as_dict`` (:class:`~repro.core.specs.SystemSpec`,
    :class:`~repro.core.timing.TimingSpec`,
    :class:`~repro.scenarios.spec.ScenarioSpec`).  Anything else is
    refused loudly — hashing a ``repr`` would produce keys that drift
    across runs.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        return jsonable(as_dict())
    if isinstance(value, Mapping):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)) or (
        isinstance(value, Sequence) and not isinstance(value, (str, bytes))
    ):
        return [jsonable(item) for item in value]
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalars
        return jsonable(item())
    raise ConfigurationError(
        f"cannot build a stable cache key from {type(value).__name__!r} "
        f"({value!r}); give it an as_dict() or pass plain JSON types"
    )


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` so equal values are textually equal.

    Keys are sorted recursively and separators carry no whitespace;
    floats rely on ``repr`` round-tripping (exact for Python floats).
    """
    return json.dumps(
        jsonable(payload),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )


def cache_key(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
