"""Content-addressed campaign result cache.

:mod:`repro.cache.keys` turns result-determining payloads (spec dicts,
timing, scenario, seed blocks, engine version) into canonical-JSON
SHA-256 keys; :mod:`repro.cache.store` keeps the keyed entries on disk
with atomic-rename writes and corrupt-entry-as-miss reads.  The cache is
threaded through :mod:`repro.core.experiment` and
:mod:`repro.core.campaign` so repeated campaign points skip dispatch
entirely while staying bit-identical with recomputation.
"""

from .keys import ENGINE_VERSION, cache_key, canonical_json, jsonable
from .store import ResultCache, atomic_write_text

__all__ = [
    "ENGINE_VERSION",
    "ResultCache",
    "atomic_write_text",
    "cache_key",
    "canonical_json",
    "jsonable",
]
