"""A simulated process protected by address-space randomization.

:class:`RandomizedProcess` extends :class:`~repro.sim.process.SimProcess`
with an :class:`~repro.randomization.layout.AddressSpace` and the probe
semantics attackers exploit:

* a probe carrying the wrong key guess **crashes** the process — the
  forking daemon respawns it with the *same* key (fork preserves layout);
* a probe carrying the right key compromises the process.

Key changes happen only through :meth:`rerandomize` (fresh key — proactive
obfuscation) or :meth:`recover` (same key — proactive recovery), both of
which reboot the node and cleanse any compromise.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.timing import DEFAULT_RESPAWN_DELAY
from ..sim.engine import Simulator
from ..sim.process import SimProcess
from .keyspace import KeySpace
from .layout import AddressSpace, ProbeOutcome


class RandomizedProcess(SimProcess):
    """A node whose executable is randomized over a key space.

    Parameters
    ----------
    sim, name, respawn_delay:
        See :class:`~repro.sim.process.SimProcess`.
    keyspace:
        Key space of the randomization scheme protecting this node.
    rng:
        Stream used to draw this node's keys.
    key:
        Optional initial key; drawn uniformly when omitted.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        keyspace: KeySpace,
        rng: random.Random,
        key: Optional[int] = None,
        respawn_delay: Optional[float] = DEFAULT_RESPAWN_DELAY,
    ) -> None:
        super().__init__(sim, name, respawn_delay=respawn_delay)
        self._rng = rng
        initial = keyspace.sample_key(rng) if key is None else key
        self.address_space = AddressSpace(keyspace, initial)

    # ------------------------------------------------------------------
    @property
    def keyspace(self) -> KeySpace:
        """The key space protecting this node."""
        return self.address_space.keyspace

    def receive_probe(self, guess: int) -> ProbeOutcome:
        """Apply an attack probe to this node.

        Wrong guess → process crash (observable through connection
        closure); right guess → the node is marked compromised.

        (``AddressSpace.check_probe`` is inlined here — this runs once
        per probe, the innermost protocol operation there is.)
        """
        space = self.address_space
        space.probes_received += 1
        if guess == space.key:
            space.intrusions += 1
            self.mark_compromised()
            return ProbeOutcome.INTRUSION
        space.crashes_caused += 1
        self.crash()
        return ProbeOutcome.CRASH

    def handle_connection_data(self, connection, payload) -> None:
        """Direct attacks arrive on connections as probe payloads.

        Every randomized, network-facing process exposes this surface;
        the right guess is acknowledged to the attacker (his exploit
        code runs and phones home), the wrong one crashes us — which the
        peer observes through the connection closing.
        """
        # Probes arrive at attack rate: duck-type instead of paying a
        # Mapping ABC check per payload (non-mapping payloads lack .get).
        try:
            kind = payload.get("kind")
        except AttributeError:
            return
        if kind == "probe":
            guess = payload.get("guess", -1)
            if guess.__class__ is not int:
                guess = int(guess)
            outcome = self.receive_probe(guess)
            if outcome is ProbeOutcome.INTRUSION:
                connection.send(self.name, {"kind": "intrusion_ack", "node": self.name})

    # ------------------------------------------------------------------
    # Refresh operations (invoked by the obfuscation manager)
    # ------------------------------------------------------------------
    def rerandomize(
        self, reboot_duration: float = 0.0, key: Optional[int] = None
    ) -> int:
        """Reboot with a *fresh* randomization key (proactive obfuscation).

        ``key`` lets a caller randomize a group of nodes identically;
        when omitted a uniform key is drawn from this node's stream.
        Returns the installed key.
        """
        new_key = self.keyspace.sample_key(self._rng) if key is None else key
        self.address_space.set_key(new_key)
        self.begin_reboot(reboot_duration)
        return new_key

    def recover(self, reboot_duration: float = 0.0) -> int:
        """Reboot with the *same* key (proactive recovery, paper §2.3).

        Recovery reinstalls the original executable, so an attacker's
        knowledge of eliminated keys stays valid.  Returns the
        (unchanged) key.
        """
        self.begin_reboot(reboot_duration)
        return self.address_space.key
