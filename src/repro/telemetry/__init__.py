"""End-to-end telemetry: counters, spans, progress, snapshots.

The observability substrate of the engine (ROADMAP items 1–2 report
through it): per-run counter structs sampled by the simulation layer
(:class:`RunMetrics`), campaign-level typed metrics and frozen
snapshots (:mod:`repro.telemetry.registry`), monotonic span timers with
a JSONL trace sink (:mod:`repro.telemetry.spans`), and live progress
lines off the streaming result hook (:mod:`repro.telemetry.progress`).

Design contract: telemetry is RNG-neutral and estimate-neutral (it can
never change an outcome), zero-overhead when disabled (plain integer
increments on hot paths; spans collapse to a shared no-op), and
fan-out-invariant (per-run samples merge by addition through the
existing executor result path).
"""

from .progress import ProgressReporter
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    RunMetrics,
    fold_run_metrics,
)
from .spans import (
    TraceSink,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ProgressReporter",
    "RunMetrics",
    "TraceSink",
    "disable_tracing",
    "enable_tracing",
    "fold_run_metrics",
    "span",
    "tracing_enabled",
]
