"""Typed metrics: counters, gauges, histograms, and frozen snapshots.

Two layers share this module:

* :class:`RunMetrics` — the cheap per-run slot struct the simulation
  layer fills at run end.  It is *always* populated: the underlying
  counters are plain integer increments the hot paths maintain anyway
  (``Simulator._events_executed``, ``Network.events_elided``, attacker
  probe tallies), so "telemetry off" costs nothing beyond those ints —
  no registry, no dicts, no allocation per event.  The struct rides on
  :class:`~repro.core.experiment.LifetimeOutcome` through the existing
  executor result path, which is what makes campaign-level totals
  fan-out-invariant: per-run structs merge by addition, and addition
  commutes over any worker count, batch size or dispatch order.
* :class:`MetricsRegistry` / :class:`MetricsSnapshot` — the campaign
  aggregation vocabulary.  A registry is built *after* the runs (never
  on a hot path), folded from per-run structs plus the cache, journal,
  supervision and rare-event tallies, then frozen into a picklable
  snapshot whose :meth:`MetricsSnapshot.merge` is monotonic (counters
  add, gauges take the latest non-``None``, histograms add bucketwise).

The telemetry contract every producer must uphold: **RNG-neutral and
estimate-neutral**.  Metrics never touch an RNG stream and never feed
back into scheduling, so every golden-outcome and bit-identity gate
passes with telemetry on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Iterable, Mapping, Optional

from ..errors import ConfigurationError

#: Snapshot wire-format tag (bump when the serialized shape changes).
SNAPSHOT_FORMAT = "repro-metrics/1"


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """Per-run counter sample, read once when a run's verdict lands.

    Every field is a monotone event count over one protocol run; the
    struct is picklable (it crosses the process-pool result path) and
    merges by field-wise addition.  ``events_executed`` duplicates
    :attr:`~repro.core.experiment.LifetimeOutcome.events` deliberately:
    the outcome field is the estimator-cost contract, this struct is
    the full observability sample.
    """

    events_executed: int = 0
    events_elided: int = 0
    probes_direct: int = 0
    probes_indirect: int = 0
    fast_forward_arms: int = 0
    heap_compactions: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0

    def __add__(self, other: "RunMetrics") -> "RunMetrics":
        return RunMetrics(
            *(
                getattr(self, f.name) + getattr(other, f.name)
                for f in fields(RunMetrics)
            )
        )

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(RunMetrics)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunMetrics":
        """Rebuild from a cache entry; unknown keys are ignored and
        missing ones default to zero, so snapshots decode across
        versions instead of invalidating entries."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in payload.items() if k in names})


def fold_run_metrics(samples: Iterable[Optional[RunMetrics]]) -> RunMetrics:
    """Sum per-run samples, skipping ``None`` (runs replayed from a
    pre-telemetry cache entry carry no sample)."""
    total = RunMetrics()
    for sample in samples:
        if sample is not None:
            total = total + sample
    return total


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time numeric metric (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Cumulative-bucket histogram over fixed upper bounds.

    Bounds are fixed at construction (deterministic bucketing is part
    of the fan-out-invariance story: the same samples always land in
    the same buckets, whatever order they arrive in).  An implicit
    +inf bucket catches the overflow.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: Iterable[float]) -> None:
        self.name = name
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ConfigurationError(f"histogram {self.name!r} needs bounds")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


#: Default histogram bounds for steps-survived distributions: geometric
#: buckets wide enough for any realistic step budget.
STEPS_BOUNDS = tuple(float(2**k) for k in range(17))


class MetricsRegistry:
    """Namespace of live metrics, frozen on demand into a snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Iterable[float] = STEPS_BOUNDS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def snapshot(self) -> "MetricsSnapshot":
        """Freeze the registry's current state (sorted, picklable)."""
        return MetricsSnapshot(
            counters={
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            gauges={
                name: metric.value
                for name, metric in sorted(self._gauges.items())
                if metric.value is not None
            },
            histograms={
                name: metric.as_dict()
                for name, metric in sorted(self._histograms.items())
            },
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen, picklable view of a registry (or a merge of many).

    Serializes into campaign records and ``--metrics-out`` files via
    :meth:`as_dict`; :meth:`merge` is the fan-out aggregation rule —
    counters add, gauges take the other side's value when present,
    histograms add bucketwise (bounds must agree).
    """

    counters: dict[str, int]
    gauges: dict[str, float]
    histograms: dict[str, dict]

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = {**self.gauges, **other.gauges}
        histograms = {name: dict(h) for name, h in self.histograms.items()}
        for name, theirs in other.histograms.items():
            ours = histograms.get(name)
            if ours is None:
                histograms[name] = dict(theirs)
                continue
            if list(ours["bounds"]) != list(theirs["bounds"]):
                raise ConfigurationError(
                    f"histogram {name!r} bounds disagree; cannot merge"
                )
            histograms[name] = {
                "bounds": list(ours["bounds"]),
                "counts": [
                    a + b for a, b in zip(ours["counts"], theirs["counts"])
                ],
                "count": ours["count"] + theirs["count"],
                "total": ours["total"] + theirs["total"],
            }
        return MetricsSnapshot(
            counters=dict(sorted(counters.items())),
            gauges=dict(sorted(gauges.items())),
            histograms=dict(sorted(histograms.items())),
        )

    def as_dict(self) -> dict:
        return {
            "format": SNAPSHOT_FORMAT,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {n: dict(h) for n, h in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsSnapshot":
        if payload.get("format") != SNAPSHOT_FORMAT:
            raise ConfigurationError(
                f"not a {SNAPSHOT_FORMAT} snapshot: {payload.get('format')!r}"
            )
        return cls(
            counters={str(k): int(v) for k, v in payload["counters"].items()},
            gauges={str(k): float(v) for k, v in payload["gauges"].items()},
            histograms={
                str(k): dict(v) for k, v in payload.get("histograms", {}).items()
            },
        )
