"""Monotonic span timers with a JSONL trace sink.

A *span* brackets one phase of work (``with span("campaign.dispatch"):
...``) and, when tracing is enabled, appends one JSON line to the sink:

    {"span": "campaign.dispatch", "start": 1.234, "seconds": 0.456, ...}

``start`` is a :func:`time.perf_counter` reading — monotonic and
process-local, meant for ordering and durations within one trace file,
never for wall-clock correlation across hosts.

Zero-overhead-when-disabled is the design constraint: with no sink
installed, :func:`span` returns a single module-level no-op object —
no allocation, no clock read, no string formatting.  Instrumented call
sites therefore never need their own ``if telemetry:`` guards.

The sink is process-local state.  Worker processes of a campaign pool
do not inherit it (their per-run counters travel back through the
result path instead); traces describe the orchestrating process —
cache lookups, dispatch rounds, fold phases — which is where the
interesting scheduling time goes.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Optional, TextIO

_FORMAT = "repro-trace/1"


class TraceSink:
    """Append-only JSONL trace file (one record per completed span)."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[TextIO] = open(
            self.path, "a", encoding="utf-8"
        )
        self.emitted = 0
        self._emit({"format": _FORMAT})

    def _emit(self, record: dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        self.emitted += 1

    def emit_span(
        self, name: str, start: float, seconds: float, fields: dict
    ) -> None:
        record: dict[str, Any] = {
            "span": name,
            "start": round(start, 6),
            "seconds": round(seconds, 6),
        }
        if fields:
            record.update(fields)
        self._emit(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class _Span:
    """A live timed span (only ever allocated when tracing is on)."""

    __slots__ = ("name", "fields", "_start")

    def __init__(self, name: str, fields: dict) -> None:
        self.name = name
        self.fields = fields
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        sink = _SINK
        if sink is not None:
            sink.emit_span(
                self.name,
                self._start,
                time.perf_counter() - self._start,
                self.fields,
            )


class _NullSpan:
    """The shared disabled-path span: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()
_SINK: Optional[TraceSink] = None


def enable_tracing(path: Path | str) -> TraceSink:
    """Install a JSONL sink at ``path``; spans start recording."""
    global _SINK
    disable_tracing()
    _SINK = TraceSink(path)
    return _SINK


def disable_tracing() -> None:
    """Close and remove the sink; :func:`span` reverts to the no-op."""
    global _SINK
    if _SINK is not None:
        _SINK.close()
        _SINK = None


def tracing_enabled() -> bool:
    return _SINK is not None


def span(name: str, **fields: Any):
    """A context manager timing one phase.

    Disabled path returns the module-level no-op singleton — callers
    pay one global load and one identity check, nothing else.
    """
    if _SINK is None:
        return _NULL_SPAN
    return _Span(name, fields)
