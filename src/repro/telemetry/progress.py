"""Live campaign progress lines, driven off the streaming result hook.

:class:`ProgressReporter` consumes batches of
:class:`~repro.core.experiment.LifetimeOutcome` as
:func:`~repro.core.campaign.run_campaign` collects them (the
``on_result`` streaming path, plus cache/journal replays) and renders a
one-line status: runs completed, 95% CI half-width of the running mean,
censoring fraction, and simulator events per wall-second.

TTY-aware: on an interactive stream the line rewrites itself in place
(``\\r``); on a pipe or CI log it prints a fresh line at most once per
``min_interval`` seconds, so logs stay readable.  Reporting is
observation only — it never touches an RNG stream or an estimate, so
progress-on and progress-off campaigns are bit-identical.
"""

from __future__ import annotations

import sys
import time
from typing import Iterable, Optional, TextIO


def _format_count(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


class ProgressReporter:
    """Streams one status line per update window to ``stream``.

    Parameters
    ----------
    stream:
        Where lines go (default ``sys.stderr`` — campaign tables own
        stdout).
    label:
        Prefix of every line.
    min_interval:
        Minimum seconds between rendered lines (the final line always
        renders).
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        *,
        label: str = "campaign",
        min_interval: float = 0.2,
    ) -> None:
        from ..mc.executor import StreamingMoments  # deferred: layering

        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.min_interval = min_interval
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._moments = StreamingMoments()
        self.total_runs: Optional[int] = None
        self.runs = 0
        self.censored = 0
        self.events = 0
        self.lines_rendered = 0
        self._started = time.monotonic()
        self._last_render = float("-inf")
        self._open_line = False

    # ------------------------------------------------------------------
    def begin(self, total_runs: Optional[int] = None) -> None:
        """Declare the expected run count (``None`` = open-ended)."""
        self.total_runs = total_runs
        self._started = time.monotonic()

    def update(self, outcomes: Iterable) -> None:
        """Fold a batch of completed run outcomes and maybe render."""
        import numpy as np

        steps = []
        for outcome in outcomes:
            self.runs += 1
            self.events += outcome.events
            if not outcome.compromised:
                self.censored += 1
            steps.append(float(outcome.steps))
        if steps:
            self._moments.update(np.asarray(steps, dtype=np.float64))
        self._render()

    def finish(self) -> None:
        """Render the final state and release the line."""
        self._render(force=True)
        if self._open_line:
            self.stream.write("\n")
            self.stream.flush()
            self._open_line = False

    # ------------------------------------------------------------------
    def _line(self) -> str:
        elapsed = max(time.monotonic() - self._started, 1e-9)
        if self.total_runs is not None:
            runs = f"{self.runs}/{self.total_runs} runs"
        else:
            runs = f"{self.runs} runs"
        if self.runs:
            censored = f"censored {self.censored / self.runs:.0%}"
        else:
            censored = "censored -"
        half = self._moments.ci_halfwidth
        if self._moments.count >= 2 and half != float("inf"):
            ci = f"mean {self._moments.mean:.1f} ±{half:.1f} steps"
        else:
            ci = "mean - (CI warming up)"
        rate = f"{_format_count(self.events / elapsed)} ev/s"
        return f"{self.label}: {runs} | {censored} | {ci} | {rate}"

    def _render(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        line = self._line()
        if self._isatty:
            self.stream.write("\r\x1b[2K" + line)
            self._open_line = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
        self.lines_rendered += 1
