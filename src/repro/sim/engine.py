"""Discrete-event simulation kernel.

The kernel is a classic event-heap scheduler: callbacks are scheduled at
simulated times and executed in time order (FIFO among equal times).  All
higher layers — network delivery, protocol timers, re-randomization
epochs, attacker probe pacing — are built on :class:`Simulator`.

Hot-path design (every protocol probe, message and timer passes through
here, so single-run campaign throughput is bounded by this file):

* heap entries are plain 4-slot lists ``[time, seq, fn, args]`` — heap
  sifting compares floats and ints at C speed instead of calling a
  rich-comparison method per element;
* per-event storage is a single small list whose allocation hits
  CPython's built-in C-level list free list — measurably faster than a
  Python-level entry-recycling pool (which was tried and removed), and
  no rich Python object is allocated per event;
* :meth:`Simulator.schedule_fast` is a no-handle variant for the many
  call sites that never cancel (message delivery, probe pacing,
  respawns): no :class:`Event` handle is allocated at all;
* :meth:`Simulator.run` pops the heap inline instead of peeking through
  a helper and re-popping in :meth:`Simulator.step`;
* mass cancellation compacts the heap in place once cancelled entries
  outnumber live ones, so abandoned timers cannot grow it without bound.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .rng import RngRegistry

#: Heap-entry slot indices (an entry is ``[time, seq, fn, args]``; a
#: ``fn`` of ``None`` marks the entry cancelled or already fired).
_TIME, _SEQ, _FN, _ARGS = 0, 1, 2, 3

#: Compaction threshold: rebuild the heap in place once more than this
#: many cancelled entries linger *and* they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 64


class Event:
    """Cancellation handle for a scheduled callback.

    Handles are views onto kernel heap entries.  The kernel recycles
    entries after they fire, so a handle guards every operation with its
    sequence number: once the underlying entry has fired (or has been
    reused for a later event), :meth:`cancel` is a safe no-op — a late
    ``cancel()`` can never corrupt the pending count or kill an
    unrelated event that happens to occupy the recycled slot.
    """

    __slots__ = ("time", "seq", "cancelled", "_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: list) -> None:
        self.time: float = entry[_TIME]
        self.seq: int = entry[_SEQ]
        self.cancelled = False
        self._sim = sim
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once
        (and after the event has already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        entry = self._entry
        self._entry = None
        # Generation guard: only a live entry still carrying our
        # sequence number is ours to cancel.
        if entry[_SEQ] == self.seq and entry[_FN] is not None:
            entry[_FN] = None
            entry[_ARGS] = None
            self._sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "scheduled"
        return f"<Event #{self.seq} t={self.time:.3f} {state}>"


class Simulator:
    """Event-driven simulator with a virtual clock.

    Parameters
    ----------
    seed:
        Root seed for the registry of named RNG streams
        (see :class:`repro.sim.rng.RngRegistry`).

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    __slots__ = (
        "now",
        "rng",
        "_heap",
        "_seq",
        "_events_executed",
        "_pending",
        "_running",
        "_stopped",
        "_cancelled_in_heap",
        "_compactions",
    )

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self._heap: list[list] = []
        self._seq = 0
        self._events_executed = 0
        self._pending = 0  # live (scheduled, non-cancelled) events
        self._running = False
        self._stopped = False
        self._cancelled_in_heap = 0  # dead entries awaiting pop/compaction
        self._compactions = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _push(self, time: float, fn: Callable[..., None], args: tuple) -> list:
        """Allocate and push one heap entry."""
        seq = self._seq = self._seq + 1
        self._pending += 1
        entry = [time, seq, fn, args]
        heapq.heappush(self._heap, entry)
        return entry

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return Event(self, self._push(self.now + delay, fn, args))

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        return Event(self, self._push(time, fn, args))

    def schedule_fast(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """No-handle fast path: schedule ``fn(*args)`` ``delay`` from now.

        Identical semantics to :meth:`schedule` except that no
        :class:`Event` handle is allocated, so the event cannot be
        cancelled.  Hot call sites that fire-and-forget (message
        delivery, probe pacing, respawn timers) use this to keep the
        per-event cost down to one recycled heap entry.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # _push, inlined: this is the single hottest call in the stack.
        seq = self._seq = self._seq + 1
        self._pending += 1
        heapq.heappush(self._heap, [self.now + delay, seq, fn, args])

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        event.cancel()

    def _note_cancel(self) -> None:
        """Bookkeeping for one cancelled-in-heap entry (+ compaction)."""
        self._pending -= 1
        cancelled = self._cancelled_in_heap = self._cancelled_in_heap + 1
        heap = self._heap
        if cancelled > _COMPACT_MIN_CANCELLED and cancelled * 2 > len(heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, preserving identity.

        In place (slice assignment) so that a ``run()`` loop holding a
        local reference to the heap keeps seeing the live structure even
        when a callback's cancellations trigger compaction mid-run.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[_FN] is not None]
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            fn = entry[_FN]
            if fn is None:  # cancelled; its cancel() adjusted the counter
                self._cancelled_in_heap -= 1
                continue
            time = entry[_TIME]
            if time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event heap yielded an event from the past")
            entry[_FN] = None
            self._pending -= 1
            self.now = time
            fn(*entry[_ARGS])
            self._events_executed += 1
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run events until the heap empties, ``until`` is reached, or
        ``max_events`` have executed (whichever comes first).

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, so periodic processes can be
        resumed cleanly.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        horizon = float("inf") if until is None else until
        budget = -1 if max_events is None else max_events
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap and not self._stopped:
                entry = heap[0]
                fn = entry[_FN]
                if fn is None:  # cancelled: discard and retry
                    pop(heap)
                    self._cancelled_in_heap -= 1
                    continue
                if entry[_TIME] > horizon:
                    break
                if executed == budget:
                    return
                pop(heap)
                self.now = entry[_TIME]
                # fn is cleared so a live Event handle's late cancel()
                # sees a consumed entry (args may keep their reference:
                # the entry itself is garbage after this pop).
                entry[_FN] = None
                self._pending -= 1
                fn(*entry[_ARGS])
                executed += 1
        finally:
            self._running = False
            self._events_executed += executed
            if until is not None and self.now < until and not self._stopped:
                self.now = until

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events.

        O(1): a live counter maintained on schedule / cancel / pop
        instead of a heap scan (protocol deployments keep thousands of
        events in flight, and hot paths poll this property).
        """
        return self._pending

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    @property
    def heap_compactions(self) -> int:
        """Number of in-place heap compactions performed so far."""
        return self._compactions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}, pending={self.pending_events})"
