"""Structured event tracing for protocol-level runs.

A :class:`TraceRecorder` hooks the listener surfaces that already exist
throughout the stack — process state transitions, crashes, compromises,
obfuscation epochs — and keeps a bounded, queryable timeline.  Used by
examples and debugging sessions to answer "what actually happened in
this run?" without instrumenting any component.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..errors import ConfigurationError
from .engine import Simulator
from .process import SimProcess


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry."""

    time: float
    category: str
    subject: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        line = f"[{self.time:10.3f}] {self.category:<12} {self.subject:<12} {extras}"
        return line.rstrip()


class TraceRecorder:
    """Collects :class:`TraceEvent` records from a running simulation.

    Parameters
    ----------
    sim:
        The simulator providing timestamps.
    limit:
        Maximum retained events (oldest dropped first); ``None`` keeps
        everything.
    """

    def __init__(self, sim: Simulator, limit: Optional[int] = 10_000) -> None:
        if limit is not None and limit < 1:
            raise ConfigurationError(f"limit must be >= 1 or None, got {limit}")
        self.sim = sim
        self._events: deque[TraceEvent] = deque(maxlen=limit)
        self.dropped = 0

    @property
    def limit(self) -> Optional[int]:
        """Maximum retained events (``None`` = unbounded)."""
        return self._events.maxlen

    @limit.setter
    def limit(self, limit: Optional[int]) -> None:
        """Re-bound the buffer in place.

        Shrinking below the current fill evicts the oldest events, which
        count as dropped — so ``dropped`` stays an accurate total even
        when the limit changes under an already-full deque.
        """
        if limit is not None and limit < 1:
            raise ConfigurationError(f"limit must be >= 1 or None, got {limit}")
        events = self._events
        if limit is not None and len(events) > limit:
            self.dropped += len(events) - limit
        self._events = deque(events, maxlen=limit)

    # ------------------------------------------------------------------
    def record(self, category: str, subject: str, **detail: Any) -> TraceEvent:
        """Append one event stamped with the current simulated time.

        The drop check reads the deque's own bound rather than a cached
        copy of the construction-time limit, so drops stay counted
        correctly after :attr:`limit` is reassigned on a full buffer.
        """
        events = self._events
        if events.maxlen is not None and len(events) == events.maxlen:
            self.dropped += 1
        event = TraceEvent(
            time=self.sim.now, category=category, subject=subject, detail=detail
        )
        events.append(event)
        return event

    # ------------------------------------------------------------------
    # Attachment helpers
    # ------------------------------------------------------------------
    def attach_process(self, process: SimProcess) -> None:
        """Trace a process's state transitions and compromises."""
        process.add_state_listener(
            lambda p: self.record("state", p.name, state=p.state.value)
        )
        process.add_compromise_listener(lambda p: self.record("compromise", p.name))

    def attach_obfuscation(self, manager) -> None:
        """Trace epoch boundaries of an obfuscation manager."""
        manager.add_epoch_listener(
            lambda epoch: self.record("epoch", "obfuscation", epoch=epoch)
        )

    def attach_deployment(self, deployed) -> None:
        """Trace every node, the epochs and system compromise of a
        :class:`repro.core.builders.DeployedSystem`.

        The monitor's own compromise listeners were registered at build
        time and therefore run *before* ours, so checking the monitor
        from an additional per-node listener observes the system-level
        verdict for the very intrusion that caused it.
        """
        monitor = deployed.monitor
        recorded = {"system_down": False}

        def check_system(_node) -> None:
            if monitor.is_compromised and not recorded["system_down"]:
                recorded["system_down"] = True
                self.record("system-down", "monitor", cause=monitor.cause)

        for node in list(deployed.servers) + list(deployed.proxies):
            self.attach_process(node)
            node.add_compromise_listener(check_system)
        self.attach_obfuscation(deployed.obfuscation)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def events(
        self,
        category: Optional[str] = None,
        subject: Optional[str] = None,
        since: float = float("-inf"),
    ) -> list[TraceEvent]:
        """Filtered view of the timeline (insertion order)."""
        return [
            e
            for e in self._events
            if (category is None or e.category == category)
            and (subject is None or e.subject == subject)
            and e.time >= since
        ]

    def count(self, category: Optional[str] = None) -> int:
        """Number of retained events (optionally of one category)."""
        if category is None:
            return len(self._events)
        return sum(1 for e in self._events if e.category == category)

    def render_timeline(self, events: Optional[Iterable[TraceEvent]] = None) -> str:
        """Human-readable timeline of ``events`` (default: everything)."""
        chosen = list(events) if events is not None else list(self._events)
        if not chosen:
            return "(empty trace)"
        return "\n".join(str(event) for event in chosen)
