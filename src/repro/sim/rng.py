"""Deterministic random-number streams for reproducible simulations.

Every stochastic component of a simulation draws from its own named stream
derived from a single root seed.  Two runs with the same root seed and the
same component names therefore produce identical event sequences, while
adding a new component does not perturb the streams of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a component ``name``.

    The derivation hashes the pair so that sequential component names do
    not produce correlated ``random.Random`` states.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of named, independently seeded ``random.Random`` streams.

    Parameters
    ----------
    root_seed:
        Seed from which every named stream is derived.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry whose streams are independent of ours."""
        return RngRegistry(derive_seed(self.root_seed, f"spawn:{name}"))

    def reseed(self, root_seed: int) -> None:
        """Re-derive every existing stream from a new root seed, in place.

        Components keep direct references to their ``random.Random``
        objects, so the streams are ``seed()``-ed rather than replaced —
        every holder observes the new state immediately.  Streams created
        afterwards derive from the new root too.  Used by the rare-event
        engine to make resplit trajectory children diverge
        deterministically (see :mod:`repro.rare.fork`).
        """
        self.root_seed = root_seed
        for name, stream in self._streams.items():
            stream.seed(derive_seed(root_seed, name))

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(root_seed={self.root_seed}, streams={len(self._streams)})"
