"""Process model for simulated nodes.

A :class:`SimProcess` is anything that occupies a machine in the simulated
deployment: servers, proxies, the name server, clients and attackers.  It
has an availability state (running / crashed / rebooting / stopped), an
orthogonal *compromised* flag, and hooks that subclasses override to
implement protocol behaviour.

Crash-and-respawn follows the forking-daemon model from the paper (§2.1):
a crashed server process is respawned by its daemon after a short delay,
and — because the child is *forked*, not re-executed — it inherits the
parent's randomization key.  Keys change only on reboot (re-randomization
or recovery), which is driven by :mod:`repro.randomization.obfuscation`.

Listeners are stored as tuples and replaced wholesale on registration:
notifying N listeners then iterates a snapshot without copying a list
per crash/state-change (the crash path runs at probe rate), and a
process with no listeners pays a single truthiness check.  Registration
during notification affects only subsequent notifications — the same
semantics the previous copy-on-notify list implementation had.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Optional

from ..core.timing import DEFAULT_RESPAWN_DELAY
from ..errors import SimulationError
from .engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from ..net.message import Message

Listener = Callable[["SimProcess"], None]


class ProcessState(enum.Enum):
    """Availability state of a simulated process."""

    RUNNING = "running"
    CRASHED = "crashed"
    REBOOTING = "rebooting"
    STOPPED = "stopped"


class SimProcess:
    """Base class for all simulated nodes.

    Parameters
    ----------
    sim:
        The simulator that drives this process.
    name:
        Globally unique address of the process on the network.
    respawn_delay:
        Delay after a crash before the forking daemon restores the
        process, or ``None`` if the process has no forking daemon (it
        then stays crashed until rebooted externally).  Deployments
        thread this from a :class:`~repro.core.timing.TimingSpec`; the
        default is the paper-realistic
        :data:`~repro.core.timing.DEFAULT_RESPAWN_DELAY`.
    """

    __slots__ = (
        "sim",
        "name",
        "respawn_delay",
        "allowed_senders",
        "allowed_connection_initiators",
        "state",
        "compromised",
        "crash_count",
        "respawn_count",
        "reboot_count",
        "_crash_listeners",
        "_state_listeners",
        "_compromise_listeners",
        "_in_outage",
        "_outage_saved_delay",
        "__dict__",  # subclasses carry protocol state of their own
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        respawn_delay: Optional[float] = DEFAULT_RESPAWN_DELAY,
    ) -> None:
        self.sim = sim
        self.name = name
        self.respawn_delay = respawn_delay
        #: When not ``None``, only these senders may reach us with
        #: datagrams ("servers accept messages only from proxies and NS").
        self.allowed_senders: Optional[set[str]] = None
        #: When not ``None``, only these initiators may open connections
        #: to us (a fortified server is unreachable from outside).
        self.allowed_connection_initiators: Optional[set[str]] = None
        self.state = ProcessState.RUNNING
        self.compromised = False
        self.crash_count = 0
        self.respawn_count = 0
        self.reboot_count = 0
        self._crash_listeners: tuple[Listener, ...] = ()
        self._state_listeners: tuple[Listener, ...] = ()
        self._compromise_listeners: tuple[Listener, ...] = ()
        self._in_outage = False
        self._outage_saved_delay: Optional[float] = respawn_delay

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def is_available(self) -> bool:
        """True when the process can receive and handle messages."""
        return self.state is ProcessState.RUNNING

    def accepts_message_from(self, src: str) -> bool:
        """Datagram admission control (see ``allowed_senders``)."""
        return self.allowed_senders is None or src in self.allowed_senders

    def accepts_connection_from(self, initiator: str) -> bool:
        """Connection admission control (see
        ``allowed_connection_initiators``)."""
        return (
            self.allowed_connection_initiators is None
            or initiator in self.allowed_connection_initiators
        )

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------
    def add_crash_listener(self, listener: Listener) -> None:
        """Register a callback invoked (synchronously) whenever we crash."""
        self._crash_listeners += (listener,)

    def add_state_listener(self, listener: Listener) -> None:
        """Register a callback invoked on every state transition."""
        self._state_listeners += (listener,)

    def add_compromise_listener(self, listener: Listener) -> None:
        """Register a callback invoked when the process is compromised."""
        self._compromise_listeners += (listener,)

    def _set_state(self, state: ProcessState) -> None:
        self.state = state
        listeners = self._state_listeners
        if listeners:
            for listener in listeners:
                listener(self)

    # ------------------------------------------------------------------
    # Crash / respawn (forking daemon)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash the process (e.g. an incorrectly guessed probe hit it).

        Crash listeners fire immediately — in particular, open connections
        close, which is the attacker's observation channel.  If the process
        has a forking daemon, a respawn is scheduled.
        """
        if self.state is not ProcessState.RUNNING:
            return
        self.crash_count += 1
        self.state = ProcessState.CRASHED  # _set_state, inlined (hot)
        listeners = self._state_listeners
        if listeners:
            for listener in listeners:
                listener(self)
        listeners = self._crash_listeners
        if listeners:
            for listener in listeners:
                listener(self)
        if self.respawn_delay is not None:
            self.sim.schedule_fast(self.respawn_delay, self._respawn)

    def _respawn(self) -> None:
        """Forking-daemon respawn: restore service, *preserving* the key.

        A respawn scheduled *before* an outage began must not revive the
        powered-off machine, so mid-outage respawns are dropped (the
        daemon itself is down with the machine).
        """
        if self.state is not ProcessState.CRASHED or self._in_outage:
            return
        self.respawn_count += 1
        self.state = ProcessState.RUNNING  # _set_state, inlined (hot)
        listeners = self._state_listeners
        if listeners:
            for listener in listeners:
                listener(self)
        self.on_respawn()

    def revive(self) -> None:
        """Bring a crashed process back up (an operator action, used by
        fault-injection plans to end an outage)."""
        self._respawn()

    # ------------------------------------------------------------------
    # Outages (machine down — nothing can restart it until it ends)
    # ------------------------------------------------------------------
    def begin_outage(self) -> None:
        """Take the machine down: the forking daemon cannot respawn it
        and refresh reboots cannot reach it until :meth:`end_outage`."""
        self._outage_saved_delay = self.respawn_delay
        self.respawn_delay = None
        self._in_outage = True
        self.crash()

    def end_outage(self) -> None:
        """Power the machine back on and restore its daemon."""
        if not self._in_outage:
            return
        self._in_outage = False
        self.respawn_delay = self._outage_saved_delay
        self.revive()

    # ------------------------------------------------------------------
    # Reboot (re-randomization / recovery)
    # ------------------------------------------------------------------
    def begin_reboot(self, duration: float = 0.0) -> None:
        """Take the process down for a reboot lasting ``duration``.

        Rebooting cleanses compromise: the attacker loses control of the
        node when its executable is replaced (paper §4, Definition 4
        context: control lasts "until re-randomization is applied").
        """
        if self.state is ProcessState.STOPPED:
            raise SimulationError(f"cannot reboot stopped process {self.name}")
        if self._in_outage:
            return  # a powered-off machine cannot be refreshed
        self.compromised = False
        self.reboot_count += 1
        if duration <= 0.0:
            self._set_state(ProcessState.RUNNING)
            self.on_reboot_complete()
            return
        self._set_state(ProcessState.REBOOTING)
        listeners = self._crash_listeners
        if listeners:
            for listener in listeners:
                listener(self)
        self.sim.schedule_fast(duration, self._finish_reboot)

    def _finish_reboot(self) -> None:
        if self.state is not ProcessState.REBOOTING:
            return
        self._set_state(ProcessState.RUNNING)
        self.on_reboot_complete()

    def stop(self) -> None:
        """Permanently remove the process from the simulation."""
        self._set_state(ProcessState.STOPPED)
        listeners = self._crash_listeners
        if listeners:
            for listener in listeners:
                listener(self)

    # ------------------------------------------------------------------
    # Compromise
    # ------------------------------------------------------------------
    def mark_compromised(self) -> None:
        """Record that an attacker now controls this process."""
        if self.state is ProcessState.STOPPED:
            return
        self.compromised = True
        self.on_compromised()
        listeners = self._compromise_listeners
        if listeners:
            for listener in listeners:
                listener(self)

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def handle_message(self, message: "Message") -> None:
        """Handle a datagram delivered by the network.  Override me."""

    def handle_connection_data(self, connection, payload) -> None:
        """Handle data arriving on an open connection.  Override me."""

    def on_connection_closed(self, connection) -> None:
        """Notification that a connection we are party to closed."""

    def on_respawn(self) -> None:
        """Hook invoked after a forking-daemon respawn."""

    def on_reboot_complete(self) -> None:
        """Hook invoked after a reboot completes."""

    def on_compromised(self) -> None:
        """Hook invoked when the process becomes attacker-controlled."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "!" if self.compromised else ""
        return f"<{type(self).__name__} {self.name} {self.state.value}{flag}>"
