"""Protocol-level campaigns: grids of full-deployment lifetime runs.

The protocol analogue of :mod:`repro.mc.sweeps`: a campaign evaluates
(system × scheme × α × κ) grids of protocol-level lifetimes, fanning
*every* seed of *every* grid point across worker processes through the
generic :class:`repro.mc.executor.TaskExecutor` — parallelism spans the
whole campaign, not one grid point at a time.

Determinism contract: every seed is derived before dispatch with
:func:`repro.mc.executor.derive_point_seed` from the root seed, the grid
point's index and the trial index, so campaign results are bit-identical
for any worker count or batch size (including the serial fallback, and
including mid-campaign pool breakage).

``precision=`` switches each grid point from a fixed seed count to
CI-width-targeted early stopping (see
:func:`repro.core.experiment.estimate_protocol_lifetime` for the
censoring rules that guard it).
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence

from ..cache import ResultCache
from ..cache.keys import ENGINE_VERSION, cache_key
from ..errors import ConfigurationError, ReproError
from ..randomization.obfuscation import Scheme
from ..supervision.journal import CampaignJournal, deliver_sigterm_as_interrupt
from ..supervision.policy import (
    FailureManifest,
    Quarantined,
    SupervisionPolicy,
    TaskFailure,
)
from ..telemetry.registry import MetricsRegistry, MetricsSnapshot, fold_run_metrics
from ..telemetry.spans import span
from .experiment import (
    DEFAULT_MAX_CENSORED,
    DEFAULT_SEED_BATCH,
    CensoredPrecisionError,
    LifetimeEstimate,
    ProtocolTask,
    _aggregate,
    _batched,
    _cache_fetch,
    _outcome_block_payload,
    _outcome_payload,
    _outcomes_from_payload,
    estimate_protocol_lifetime,
    run_protocol_task,
)
from .specs import SystemClass, SystemSpec
from .timing import TimingSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..rare.splitting import SplittingConfig
    from ..scenarios.spec import ScenarioSpec
    from ..supervision.chaos import ChaosSpec
    from ..telemetry.progress import ProgressReporter


@dataclass(frozen=True)
class CampaignResult:
    """All grid points of one protocol campaign, in grid order.

    ``cache_hits`` / ``cache_misses`` count result-cache lookups made by
    this campaign (``None`` when it ran without a cache).
    ``estimator`` records the campaign-level request (per-point
    estimates carry what each point actually used — an ``"auto"``
    campaign mixes ``"mc"`` and ``"splitting"`` rows).  ``wall_seconds``
    is the campaign's wall-clock time; unlike everything else in the
    result it is *not* reproducible and stays out of cache keys.
    """

    estimates: tuple[LifetimeEstimate, ...]
    root_seed: int
    trials: int
    max_steps: int
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    estimator: str = "mc"
    wall_seconds: Optional[float] = None
    supervised: bool = False
    failures: tuple[TaskFailure, ...] = ()
    retries: int = 0
    timeouts: int = 0
    journal_replayed: int = 0
    journal_appended: int = 0

    def __len__(self) -> int:
        return len(self.estimates)

    def __iter__(self):
        return iter(self.estimates)

    @property
    def specs(self) -> list[SystemSpec]:
        return [e.spec for e in self.estimates]

    @property
    def total_runs(self) -> int:
        """Protocol runs executed across the whole campaign."""
        return sum(e.stats.n for e in self.estimates)

    @property
    def total_censored(self) -> int:
        return sum(e.censored for e in self.estimates)

    @property
    def total_events(self) -> int:
        """Simulator events executed across the whole campaign."""
        return sum(e.events for e in self.estimates)

    @property
    def quarantined(self) -> int:
        """Tasks quarantined by supervision (see :attr:`failures`)."""
        return len(self.failures)

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Fold the whole campaign into one frozen metrics snapshot.

        Computed on demand from the retained per-run samples plus the
        cache / journal / supervision / rare-event tallies the result
        already carries.  Counter totals are fan-out-invariant: per-run
        samples merge by addition, so the same campaign snapshotted
        under any worker count, batch size or dispatch order reports
        identical totals.  (Cache hit/miss counters describe *this*
        execution — a warm re-run legitimately differs there.)
        """
        registry = MetricsRegistry()
        outcomes = [o for e in self.estimates for o in e.outcomes]
        run_totals = fold_run_metrics(o.metrics for o in outcomes)
        counters = registry.counter
        counters("runs_total").inc(self.total_runs)
        counters("runs_censored").inc(self.total_censored)
        counters("events_executed").inc(self.total_events)
        for name, value in run_totals.as_dict().items():
            if name == "events_executed":
                continue  # total_events above also covers splitting waves
            counters(f"sim_{name}").inc(value)
        if self.cache_hits is not None:
            counters("cache_hits").inc(self.cache_hits)
            counters("cache_misses").inc(self.cache_misses or 0)
        counters("journal_replayed").inc(self.journal_replayed)
        counters("journal_appended").inc(self.journal_appended)
        if self.supervised:
            counters("supervision_retries").inc(self.retries)
            counters("supervision_timeouts").inc(self.timeouts)
            counters("supervision_quarantined").inc(self.quarantined)
        rare_estimates = [e for e in self.estimates if e.rare is not None]
        if rare_estimates:
            counters("rare_points").inc(len(rare_estimates))
            counters("rare_replications").inc(
                sum(e.rare.replications for e in rare_estimates)
            )
            counters("rare_trajectories").inc(
                sum(e.rare.trajectories for e in rare_estimates)
            )
        registry.gauge("grid_points").set(len(self.estimates))
        if self.wall_seconds is not None:
            registry.gauge("wall_seconds").set(self.wall_seconds)
            if self.wall_seconds > 0:
                registry.gauge("events_per_second").set(
                    self.total_events / self.wall_seconds
                )
        steps = registry.histogram("steps_survived")
        for outcome in outcomes:
            steps.observe(outcome.steps)
        return registry.snapshot()


class CampaignInterrupted(ReproError):
    """A campaign was interrupted (Ctrl-C / SIGTERM) after partial work.

    Carries the partial :class:`CampaignResult` built from every grid
    point that had fully completed at the moment of interruption —
    already flushed to the journal and result cache, so a ``--resume``
    run dispatches none of it again.
    """

    def __init__(self, message: str, partial: CampaignResult) -> None:
        super().__init__(message)
        self.partial = partial


def campaign_record(
    result: CampaignResult,
    *,
    timing: Optional[TimingSpec] = None,
    timing_preset: Optional[str] = None,
    scenario: "ScenarioSpec | None" = None,
    metrics: Optional[MetricsSnapshot] = None,
) -> dict:
    """Serialize a campaign as a diffable JSON-ready record.

    The schema mirrors the BENCH records under ``benchmarks/results/``
    (one row per grid point with the protocol mean, 95% CI, censoring
    and Kaplan-Meier summary), so sweep outputs and bench outputs diff
    against each other.  ``timing`` / ``timing_preset`` document the
    :class:`~repro.core.timing.TimingSpec` the campaign ran under;
    ``scenario`` embeds the full scenario spec (name + composition) so
    a scenario campaign record is self-describing and reproducible.
    ``metrics`` (usually ``result.metrics_snapshot()``) embeds the
    telemetry snapshot — opt-in, so records stay diffable against
    pre-telemetry baselines unless the caller asks for it.
    """
    rows = []
    for estimate in result.estimates:
        spec = estimate.spec
        row = {
            "label": spec.label,
            "system": spec.system.value,
            "scheme": spec.scheme.name,
            "alpha": spec.alpha,
            "kappa": spec.kappa,
            "entropy_bits": spec.entropy_bits,
            "runs": estimate.stats.n,
            "protocol_mean": estimate.mean_steps,
            "protocol_ci": [estimate.stats.ci_low, estimate.stats.ci_high],
            "std": estimate.stats.std,
            "min": estimate.stats.minimum,
            "max": estimate.stats.maximum,
            "censored": estimate.censored,
            "censored_fraction": estimate.censored_fraction,
            "km_mean": estimate.km_mean_steps,
            "converged": estimate.converged,
            "estimator": estimate.estimator,
            "events": estimate.events,
        }
        rare = estimate.rare
        if rare is not None:
            row["rare"] = {
                "probability": rare.probability,
                "ci": [rare.ci_low, rare.ci_high],
                "levels": list(rare.levels),
                "level_stats": [
                    {"level": s.level, "n": s.n, "crossed": s.crossed}
                    for s in rare.level_stats
                ],
                "replications": rare.replications,
                "trajectories": rare.trajectories,
                "pilot_runs": rare.pilot_runs,
            }
        rows.append(row)
    record = {
        "benchmark": "protocol_campaign",
        "root_seed": result.root_seed,
        "trials_per_point": result.trials,
        "max_steps": result.max_steps,
        "grid_points": len(result),
        "total_runs": result.total_runs,
        "total_censored": result.total_censored,
        "total_events": result.total_events,
        "estimator": result.estimator,
        "rows": rows,
    }
    if result.wall_seconds is not None:
        record["wall_seconds"] = result.wall_seconds
    if timing_preset is not None:
        record["timing_preset"] = timing_preset
    if timing is not None:
        record["timing"] = timing.as_dict()
    if scenario is not None:
        record["scenario"] = scenario.name
        record["scenario_spec"] = scenario.as_dict()
    if result.cache_hits is not None:
        record["cache"] = {
            "hits": result.cache_hits,
            "misses": result.cache_misses,
        }
    if result.supervised:
        record["supervision"] = {
            "retries": result.retries,
            "timeouts": result.timeouts,
            "quarantined": result.quarantined,
            "failures": [failure.as_dict() for failure in result.failures],
        }
    if metrics is not None:
        record["metrics"] = metrics.as_dict()
    return record


def campaign_grid(
    systems: Sequence[SystemClass] = tuple(SystemClass),
    schemes: Sequence[Scheme] = (Scheme.PO, Scheme.SO),
    alphas: Sequence[float] = (0.1,),
    kappas: Sequence[float] = (0.5,),
    entropy_bits: int = 8,
    **spec_kwargs,
) -> list[SystemSpec]:
    """Build the (system × scheme × α × κ) spec grid of a campaign.

    κ only parameterizes S2 (Definition 5), so S0/S1 points are emitted
    once per (scheme, α) instead of once per κ — the grid never contains
    duplicate specs.
    """
    if not systems or not schemes or not alphas:
        raise ConfigurationError("campaign grid axes must be non-empty")
    if not kappas and SystemClass.S2 in systems:
        raise ConfigurationError("S2 campaigns need a non-empty kappa grid")
    specs: list[SystemSpec] = []
    for system in systems:
        for scheme in schemes:
            for alpha in alphas:
                effective_kappas = kappas if system is SystemClass.S2 else (0.5,)
                for kappa in effective_kappas:
                    specs.append(
                        SystemSpec(
                            system=system,
                            scheme=scheme,
                            alpha=alpha,
                            kappa=kappa,
                            entropy_bits=entropy_bits,
                            **spec_kwargs,
                        )
                    )
    return specs


def _task_key(task: ProtocolTask, cache: Optional[ResultCache]) -> str:
    """Content-addressed key of one task's outcome block.

    The same payload the result cache would key the whole point block
    with, but per task batch — journal entries are therefore
    self-validating: resuming against a changed config (different spec,
    seeds, steps, scenario or engine version) simply finds no matching
    keys and re-runs everything.
    """
    payload = _outcome_block_payload(
        task.spec,
        list(task.seeds),
        task.max_steps,
        dict(task.build_kwargs),
        task.scenario,
    )
    if cache is not None:
        return cache.key_for(payload)
    payload["engine_version"] = ENGINE_VERSION
    return cache_key(payload)


def _supervised_executor(
    workers: int | None,
    supervision: Optional[SupervisionPolicy],
    chaos: "ChaosSpec | None",
):
    """A :class:`TaskExecutor` whose backend chain is supervised.

    Backend stack (inside out): the plain local backend for the worker
    count, a :class:`~repro.supervision.ChaosBackend` when a fault spec
    is injected, and the :class:`~repro.supervision.SupervisedBackend`
    on top.  Returns ``(executor, manifest)`` — the manifest accumulates
    across every map round of the campaign.
    """
    from ..mc.executor import TaskExecutor, backend_for, resolve_workers
    from ..supervision.backend import SupervisedBackend
    from ..supervision.chaos import ChaosBackend

    resolved = resolve_workers(workers)
    inner = backend_for(resolved)
    if chaos is not None:
        inner = ChaosBackend(chaos, inner)
    backend = SupervisedBackend(
        inner, supervision if supervision is not None else SupervisionPolicy()
    )
    return TaskExecutor(resolved, backend=backend), backend.manifest


def run_campaign(
    specs: Sequence[SystemSpec],
    trials: int = 20,
    max_steps: int = 300,
    seed: int = 0,
    *,
    workers: int | None = None,
    batch_size: int = DEFAULT_SEED_BATCH,
    precision: Optional[float] = None,
    min_trials: int = 20,
    max_trials: int = 2_000,
    max_censored_fraction: float = DEFAULT_MAX_CENSORED,
    scenario: "ScenarioSpec | None" = None,
    cache: Optional[ResultCache] = None,
    estimator: str = "mc",
    splitting: "SplittingConfig | None" = None,
    supervision: Optional[SupervisionPolicy] = None,
    chaos: "ChaosSpec | None" = None,
    journal_path: Path | str | None = None,
    resume: bool = False,
    manifest_path: Path | str | None = None,
    progress: "ProgressReporter | None" = None,
    **build_kwargs,
) -> CampaignResult:
    """Protocol-level lifetimes for every spec of a campaign grid.

    Fixed-count campaigns flatten all (spec, seed-batch) tasks into one
    executor pass, so workers stay busy across grid-point boundaries;
    ``precision=`` campaigns stream each grid point through
    :func:`~repro.core.experiment.estimate_protocol_lifetime` (early
    stopping needs the accumulating CI between rounds).  ``scenario``
    composes every run through the scenario runtime (most callers use
    :func:`run_scenario_campaign`, which also derives the grid).

    ``cache`` consults a :class:`~repro.cache.ResultCache` per grid
    point (fixed-count) or per streaming round (precision): cached
    points skip dispatch entirely — a fully warm fixed-count campaign
    submits zero tasks — and the result reports hit/miss counts.
    Because every seed is derived before dispatch, cached and
    recomputed campaigns are bit-identical.

    ``estimator`` selects how censor-heavy grid points are handled (see
    :func:`~repro.core.experiment.estimate_protocol_lifetime`):
    ``"splitting"`` runs every point through the rare-event engine;
    ``"auto"`` runs plain Monte-Carlo and re-estimates the points whose
    censored fraction exceeds ``max_censored_fraction`` with
    multilevel splitting (their Monte-Carlo events stay charged to the
    replacement estimate).

    ``supervision`` (a :class:`~repro.supervision.SupervisionPolicy`)
    and/or ``chaos`` (a :class:`~repro.supervision.ChaosSpec`) wrap the
    executor in a :class:`~repro.supervision.SupervisedBackend`: task
    failures are retried on a seed-derived backoff schedule, hung tasks
    time out, and poison tasks are quarantined into the campaign's
    failure manifest (surfaced as :attr:`CampaignResult.failures` and,
    with ``manifest_path``, written to disk) instead of killing the
    campaign.  Because retries replay exact per-task seeds, a supervised
    campaign under any recoverable fault pattern is bit-identical to the
    fault-free run; grid points that lose tasks to quarantine estimate
    from the surviving runs (or are dropped, with a warning, when
    nothing survives) and are never cache-stored incomplete.

    ``journal_path`` keeps a crash-safe journal of completed task
    batches (fixed-count campaigns; precision campaigns already resume
    per-round through the result cache).  ``resume=True`` replays the
    journal and dispatches only missing work.  ``KeyboardInterrupt`` and
    ``SIGTERM`` flush completed grid points to the journal and result
    cache, then raise :class:`CampaignInterrupted` carrying the partial
    result.

    ``progress`` (a :class:`~repro.telemetry.progress.ProgressReporter`)
    streams live runs-completed / CI-width / censoring / events-per-sec
    lines off the same result path — pure observation, so progress-on
    and progress-off campaigns are bit-identical.
    """
    from ..mc.executor import TaskExecutor, derive_point_seed  # avoids cycle

    start = time.perf_counter()
    specs = list(specs)
    if not specs:
        raise ConfigurationError("campaign needs at least one spec")
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if estimator not in ("mc", "splitting", "auto"):
        raise ConfigurationError(
            f"estimator must be 'mc', 'splitting' or 'auto', got {estimator!r}"
        )
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    supervising = supervision is not None or chaos is not None
    manifest: Optional[FailureManifest] = None
    # Journal replay/append tallies, filled once the journal (created
    # further down the fixed-count path) has been opened and drained.
    journal_stats = {"replayed": 0, "appended": 0}

    def build_result(estimates: list, *, trials_out: int) -> CampaignResult:
        return CampaignResult(
            estimates=tuple(estimates),
            root_seed=seed,
            trials=trials_out,
            max_steps=max_steps,
            cache_hits=cache.hits - hits_before if cache is not None else None,
            cache_misses=(
                cache.misses - misses_before if cache is not None else None
            ),
            estimator=estimator,
            wall_seconds=time.perf_counter() - start,
            supervised=supervising,
            failures=tuple(manifest.failures) if manifest is not None else (),
            retries=manifest.retries if manifest is not None else 0,
            timeouts=manifest.timeouts if manifest is not None else 0,
            journal_replayed=journal_stats["replayed"],
            journal_appended=journal_stats["appended"],
        )

    def write_manifest() -> None:
        if manifest is not None and manifest_path is not None:
            manifest.write(manifest_path)

    def progress_update(outcomes) -> None:
        if progress is not None:
            progress.update(outcomes)

    def progress_finish() -> None:
        if progress is not None:
            progress.finish()

    if precision is not None or estimator == "splitting":
        if journal_path is not None:
            warnings.warn(
                "precision/splitting campaigns resume per round through "
                "the result cache; journal_path is ignored",
                RuntimeWarning,
                stacklevel=2,
            )
        estimates = []
        # One pool serves every grid point — paying pool startup per
        # point would swamp the parallel speedup on larger grids.
        # (Pure-splitting campaigns stream per point too: each point is
        # one folded estimate, not a flat fan-out of seed batches.)
        if supervising:
            shared_cm, manifest = _supervised_executor(workers, supervision, chaos)
        else:
            shared_cm = TaskExecutor(workers)
        trials_out = 0 if precision is not None else trials
        if progress is not None:
            progress.begin(None)  # streaming rounds: no fixed run count
        try:
            with deliver_sigterm_as_interrupt(), shared_cm as shared_executor:
                for i, spec in enumerate(specs):
                    try:
                        with span("campaign.point", index=i, label=spec.label):
                            estimate = estimate_protocol_lifetime(
                                spec,
                                trials=trials,
                                max_steps=max_steps,
                                batch_size=batch_size,
                                precision=precision,
                                min_trials=min_trials,
                                max_trials=max_trials,
                                max_censored_fraction=max_censored_fraction,
                                seed_for=lambda j, i=i: derive_point_seed(
                                    seed, i, j
                                ),
                                executor=shared_executor,
                                scenario=scenario,
                                cache=cache,
                                estimator=estimator,
                                splitting=splitting,
                                **build_kwargs,
                            )
                    except CensoredPrecisionError as exc:
                        # One heavily censored grid point must not discard
                        # the rest of the campaign: keep the outcomes it
                        # already simulated as an unconverged lower-bound
                        # estimate (censored runs burn the whole step
                        # budget — the last thing to do is simulate them
                        # twice) and move on.  (estimator="auto" never gets
                        # here — it re-estimates such points by splitting.)
                        warnings.warn(
                            f"campaign point {i} refused its precision target "
                            f"({exc}); reporting the {len(exc.outcomes)} runs "
                            "already simulated as a lower-bound estimate "
                            "instead",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        estimate = _aggregate(
                            spec, list(exc.outcomes), converged=False
                        )
                    estimates.append(estimate)
                    progress_update(estimate.outcomes)
        except KeyboardInterrupt:
            # Completed grid points are already in the result cache (if
            # any); report them as a typed partial result.
            progress_finish()
            write_manifest()
            raise CampaignInterrupted(
                f"campaign interrupted with {len(estimates)} of "
                f"{len(specs)} grid points complete (completed rounds "
                "are in the result cache)",
                build_result(estimates, trials_out=trials_out),
            ) from None
        progress_finish()
        write_manifest()
        return build_result(estimates, trials_out=trials_out)

    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if progress is not None:
        progress.begin(len(specs) * trials)
    frozen_kwargs = tuple(sorted(build_kwargs.items()))
    tasks: list[ProtocolTask] = []
    owners: list[int] = []
    per_spec: list[list] = [[] for _ in specs]
    # Grid points whose seed block missed the cache; stored after the
    # executor pass.  One entry covers a point's whole seed block, so a
    # fully warm campaign scores exactly one hit per grid point — and
    # builds no tasks at all.
    point_keys: dict[int, str] = {}
    with span("campaign.prepare", grid_points=len(specs), trials=trials):
        for i, spec in enumerate(specs):
            point_seeds = [derive_point_seed(seed, i, j) for j in range(trials)]
            if cache is not None:
                key = cache.key_for(
                    _outcome_block_payload(
                        spec, point_seeds, max_steps, build_kwargs, scenario
                    )
                )
                cached = _cache_fetch(cache, key, spec, point_seeds)
                if cached is not None:
                    per_spec[i] = cached
                    progress_update(cached)
                    continue
                point_keys[i] = key
            for batch in _batched(point_seeds, batch_size):
                tasks.append(
                    ProtocolTask(
                        spec=spec,
                        seeds=batch,
                        max_steps=max_steps,
                        build_kwargs=frozen_kwargs,
                        scenario=scenario,
                    )
                )
                owners.append(i)

    # Crash-safe journal: completed task batches stream in as they land
    # and a resumed campaign prefills from the surviving entries, so a
    # kill loses at most the in-flight tasks.
    journal: Optional[CampaignJournal] = None
    journal_entries: dict = {}
    task_keys: list[Optional[str]] = [None] * len(tasks)
    if journal_path is not None:
        journal = CampaignJournal(
            journal_path,
            meta={
                "root_seed": seed,
                "trials": trials,
                "max_steps": max_steps,
                "grid_points": len(specs),
                "engine_version": (
                    cache.version if cache is not None else ENGINE_VERSION
                ),
            },
        )
        if not resume:
            try:
                os.unlink(journal.path)
            except OSError:
                pass
        journal_entries = journal.open()
        journal_stats["replayed"] = journal.replayed
        task_keys = [_task_key(task, cache) for task in tasks]

    # One result slot per task; journal hits prefill theirs and only the
    # rest dispatch.
    task_results: list = [None] * len(tasks)
    pending: list[int] = []
    for ti, task in enumerate(tasks):
        payload = journal_entries.get(task_keys[ti])
        if payload is not None:
            try:
                task_results[ti] = tuple(
                    _outcomes_from_payload(task.spec, payload, list(task.seeds))
                )
                progress_update(task_results[ti])
                continue
            except (KeyError, TypeError, ValueError):
                pass  # mismatched journal entry: re-run the task
        pending.append(ti)

    if supervising:
        executor, manifest = _supervised_executor(workers, supervision, chaos)
    else:
        executor = TaskExecutor(workers)

    def collect(slot: int, result) -> None:
        ti = pending[slot]
        task_results[ti] = result
        if isinstance(result, Quarantined):
            return
        if journal is not None:
            journal.append(
                task_keys[ti], [_outcome_payload(o) for o in result]
            )
        progress_update(result)

    interrupted = False
    if pending:
        try:
            with deliver_sigterm_as_interrupt(), span(
                "campaign.dispatch", tasks=len(pending)
            ):
                executor.map(
                    run_protocol_task,
                    [tasks[ti] for ti in pending],
                    on_result=collect,
                )
        except KeyboardInterrupt:
            interrupted = True
        finally:
            executor.close()
            if journal is not None:
                journal.close()
                journal_stats["appended"] = journal.appended
    elif journal is not None:
        journal.close()
        journal_stats["appended"] = journal.appended

    # Fold task results back per grid point, in task (= seed) order so
    # cached blocks keep their seed ordering.
    incomplete: set[int] = set()
    with span("campaign.fold", tasks=len(task_results)):
        for ti, result in enumerate(task_results):
            if result is None or isinstance(result, Quarantined):
                incomplete.add(owners[ti])
                continue
            per_spec[owners[ti]].extend(result)
        if cache is not None:
            for i, key in point_keys.items():
                if i in incomplete:
                    continue  # never cache a block with quarantine holes
                cache.store(key, [_outcome_payload(o) for o in per_spec[i]])

    if interrupted:
        complete = [
            i
            for i in range(len(specs))
            if i not in incomplete and per_spec[i]
        ]
        progress_finish()
        write_manifest()
        raise CampaignInterrupted(
            f"campaign interrupted with {len(complete)} of {len(specs)} "
            "grid points complete"
            + (
                " (completed tasks journaled for --resume)"
                if journal is not None
                else ""
            ),
            build_result(
                [_aggregate(specs[i], per_spec[i]) for i in complete],
                trials_out=trials,
            ),
        ) from None

    # (spec index, estimate) pairs: quarantine can drop grid points, so
    # the auto re-pass below must not assume estimates align with specs.
    indexed_estimates: list[tuple[int, LifetimeEstimate]] = []
    for i, spec in enumerate(specs):
        if i in incomplete:
            if per_spec[i]:
                warnings.warn(
                    f"grid point {i} ({spec.label}) lost quarantined "
                    f"tasks; its estimate uses the {len(per_spec[i])} "
                    "surviving runs (see the failure manifest)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                warnings.warn(
                    f"grid point {i} ({spec.label}) was fully quarantined; "
                    "dropped from the campaign estimates (see the failure "
                    "manifest)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
        indexed_estimates.append((i, _aggregate(spec, per_spec[i])))
    if estimator == "auto":
        needy = [
            k
            for k, (_, estimate) in enumerate(indexed_estimates)
            if estimate.censored_fraction > max_censored_fraction
        ]
        if needy:
            # Censor-heavy points get a second pass through the
            # rare-event engine; the Monte-Carlo events already spent
            # stay charged to the replacement estimate so the campaign's
            # cost accounting is honest.
            with TaskExecutor(workers) as shared_executor:
                for k in needy:
                    i, mc_estimate = indexed_estimates[k]
                    refined = estimate_protocol_lifetime(
                        specs[i],
                        max_steps=max_steps,
                        seed_for=lambda j, i=i: derive_point_seed(seed, i, j),
                        executor=shared_executor,
                        scenario=scenario,
                        cache=cache,
                        estimator="splitting",
                        splitting=splitting,
                        **build_kwargs,
                    )
                    indexed_estimates[k] = (
                        i,
                        replace(
                            refined, events=refined.events + mc_estimate.events
                        ),
                    )
    progress_finish()
    write_manifest()
    return build_result(
        [estimate for _, estimate in indexed_estimates], trials_out=trials
    )


def run_scenario_campaign(
    scenario: "ScenarioSpec",
    trials: int = 20,
    max_steps: int = 300,
    seed: int = 0,
    *,
    workers: int | None = None,
    batch_size: int = DEFAULT_SEED_BATCH,
    precision: Optional[float] = None,
    min_trials: int = 20,
    max_trials: int = 2_000,
    max_censored_fraction: float = DEFAULT_MAX_CENSORED,
    cache: Optional[ResultCache] = None,
    estimator: str = "mc",
    splitting: "SplittingConfig | None" = None,
    supervision: Optional[SupervisionPolicy] = None,
    chaos: "ChaosSpec | None" = None,
    journal_path: Path | str | None = None,
    resume: bool = False,
    manifest_path: Path | str | None = None,
    progress: "ProgressReporter | None" = None,
    **build_kwargs,
) -> CampaignResult:
    """Run one named scenario as a protocol campaign.

    The grid comes from the scenario itself
    (:meth:`~repro.scenarios.spec.ScenarioSpec.grid`), and every run is
    composed by the scenario runtime: scenario timing, adversary
    strategy, per-seed fault plan, workload.  The scenario travels
    inside each :class:`~repro.core.experiment.ProtocolTask`, so the
    whole campaign fans out through the same
    :class:`~repro.mc.executor.TaskExecutor` machinery with the same
    worker/batch-invariant per-seed derivation as a plain campaign.
    """
    return run_campaign(
        scenario.grid(),
        trials=trials,
        max_steps=max_steps,
        seed=seed,
        workers=workers,
        batch_size=batch_size,
        precision=precision,
        min_trials=min_trials,
        max_trials=max_trials,
        max_censored_fraction=max_censored_fraction,
        scenario=scenario,
        cache=cache,
        estimator=estimator,
        splitting=splitting,
        supervision=supervision,
        chaos=chaos,
        journal_path=journal_path,
        resume=resume,
        manifest_path=manifest_path,
        progress=progress,
        **build_kwargs,
    )
