"""Protocol-level lifetime experiments.

This is the highest-fidelity (and most expensive) of the three
evaluation methods: a full deployment is built, the attacker campaign
mounted, and the simulation run until the compromise monitor fires or a
step budget is exhausted.  Used to validate the fast Monte-Carlo models
and the analytic lifetimes against an implementation that actually
exchanges protocol messages, crashes processes and reboots nodes.

The estimator runs on the generic task fan-out of
:class:`repro.mc.executor.TaskExecutor`: seeds are derived *before*
dispatch and grouped into :class:`ProtocolTask` batches, so estimates
are bit-identical for any worker count or batch size — including the
serial fallback.  ``precision=`` switches from a fixed seed count to
streaming accumulation with CI-width-based early stopping, mirroring
the Monte-Carlo path.  Censored runs (those that survive the whole step
budget) are never folded into the mean silently: the estimate carries a
:class:`~repro.metrics.stats.CensoredSummary` and early stopping refuses
to run on samples whose censored fraction makes the CI meaningless.
"""

from __future__ import annotations

import gc
import warnings
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from ..cache import ResultCache
from ..errors import AnalysisError, ConfigurationError
from ..metrics.stats import CensoredSummary, SummaryStats, summarize_censored
from ..supervision.policy import Quarantined
from ..telemetry.registry import RunMetrics
from .builders import DeployedSystem, add_clients, attach_attacker, build_system
from .specs import SystemSpec

if TYPE_CHECKING:  # deferred at runtime: mc.executor imports core.specs
    from ..mc.executor import TaskExecutor
    from ..rare.splitting import RareEventEstimate, SplittingConfig
    from ..scenarios.spec import ScenarioSpec

#: Seeds dispatched per :class:`ProtocolTask` (amortizes process-pool
#: dispatch without starving workers on small campaigns).
DEFAULT_SEED_BATCH = 8

#: Seeds per streaming round in precision mode.  Deliberately a
#: constant — deriving it from the worker count or batch size would
#: make the convergence checkpoints (and therefore the sample size and
#: final estimate) depend on the fan-out configuration, breaking the
#: bit-identical-for-any-worker-count/batch-size contract for
#: precision runs.
PRECISION_ROUND_SEEDS = 32

#: Censored fraction above which a precision-targeted estimate refuses
#: to report a CI (the interval would describe the budget, not the
#: lifetime).
DEFAULT_MAX_CENSORED = 0.5


@dataclass(frozen=True)
class LifetimeOutcome:
    """Result of one protocol-level lifetime run.

    Attributes
    ----------
    spec, seed:
        What was run.
    compromised:
        Whether the system fell within the step budget.
    steps:
        Whole unit time-steps survived (Definition 7).  Equal to the
        budget when censored (``compromised`` is False).
    time:
        Simulated time of compromise (or the horizon).
    cause:
        Human-readable compromise cause, if any.
    probes_direct, probes_indirect:
        Attacker effort expended.
    events:
        Simulator events the run executed — the honest cost denominator
        when comparing estimators (wall time is hardware-dependent;
        event counts are bit-reproducible).
    metrics:
        Full per-run telemetry sample (:class:`~repro.telemetry.registry.
        RunMetrics`), read once at run end.  ``None`` on outcomes
        replayed from pre-telemetry cache entries.  Pure observation —
        estimators never read it.
    """

    spec: SystemSpec
    seed: int
    compromised: bool
    steps: int
    time: float
    cause: Optional[str]
    probes_direct: int
    probes_indirect: int
    events: int = 0
    metrics: Optional[RunMetrics] = None


def compose_deployment(
    spec: SystemSpec,
    *,
    seed: int = 0,
    max_steps: int = 500,
    with_workload: bool = False,
    scenario: "ScenarioSpec | None" = None,
    **build_kwargs,
) -> DeployedSystem:
    """Compose the deployment exactly as :func:`run_protocol_lifetime` does.

    Composition only — the caller starts and runs it.  Shared with the
    rare-event engine (:mod:`repro.rare`) so that splitting trajectories
    replay bit-identically to plain lifetime runs.

    With ``scenario`` set, the deployment is composed by
    :func:`~repro.scenarios.runtime.deploy_scenario` — scenario timing,
    adversary strategy, seeded fault plan and workload — and
    ``with_workload`` is ignored (the scenario declares its own
    traffic).  The epoch fast-forward arms only when the scenario has
    no faults and no workload in play (see ``deploy_scenario``).
    ``build_kwargs`` pass through to
    :func:`~repro.core.builders.build_system` either way.
    """
    if scenario is not None:
        from ..scenarios.runtime import deploy_scenario  # deferred: layering

        deployed = deploy_scenario(
            spec, scenario, seed=seed, max_steps=max_steps, **build_kwargs
        )
        assert deployed.attacker is not None
        return deployed
    deployed = build_system(spec, seed=seed, **build_kwargs)
    attacker = attach_attacker(deployed)
    if with_workload:
        add_clients(deployed, count=1)
    else:
        # No workload to serve: once every probe stream is provably
        # dead the run's verdict is decided, so let the attacker
        # fast-forward past the remaining (censored) epochs instead
        # of simulating heartbeat/refresh churn to the horizon.
        # Outcomes are bit-identical either way.
        attacker.enable_fast_forward()
    return deployed


def _run_until(deployed: DeployedSystem, horizon: float) -> None:
    """Advance a started deployment to ``horizon`` with cyclic GC paused.

    The simulation allocates at probe rate but creates no cycles the
    young-generation collector could reclaim mid-run; pausing cyclic
    GC for the run avoids per-allocation-burst scan pauses.  (The
    deployment's own cycles are collected after re-enabling.)
    """
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        deployed.sim.run(until=horizon)
    finally:
        if gc_was_enabled:
            gc.enable()


def _sample_run_metrics(deployed: DeployedSystem) -> RunMetrics:
    """Read the run's counters into one frozen telemetry sample.

    Called exactly once per run, at verdict time — the counters
    themselves are plain integers the hot paths maintain anyway, so
    this is the entire cost of always-on run telemetry.
    """
    sim = deployed.sim
    network = deployed.network
    attacker = deployed.attacker
    return RunMetrics(
        events_executed=sim.events_executed,
        events_elided=network.events_elided,
        probes_direct=0 if attacker is None else attacker.probes_sent_direct,
        probes_indirect=0 if attacker is None else attacker.probes_sent_indirect,
        fast_forward_arms=0 if attacker is None else attacker.fast_forward_arms,
        heap_compactions=sim.heap_compactions,
        messages_sent=network.messages_sent,
        messages_delivered=network.messages_delivered,
        messages_dropped=network.messages_dropped,
    )


def outcome_from_deployment(
    deployed: DeployedSystem, seed: int, max_steps: int
) -> LifetimeOutcome:
    """Read the verdict of a finished (or fast-forwarded) run."""
    spec = deployed.spec
    attacker = deployed.attacker
    assert attacker is not None
    monitor = deployed.monitor
    events = deployed.sim.events_executed
    metrics = _sample_run_metrics(deployed)
    if monitor.is_compromised:
        steps = monitor.steps_survived
        assert steps is not None
        return LifetimeOutcome(
            spec=spec,
            seed=seed,
            compromised=True,
            steps=min(steps, max_steps),
            time=monitor.compromised_at or deployed.sim.now,
            cause=monitor.cause,
            probes_direct=attacker.probes_sent_direct,
            probes_indirect=attacker.probes_sent_indirect,
            events=events,
            metrics=metrics,
        )
    return LifetimeOutcome(
        spec=spec,
        seed=seed,
        compromised=False,
        steps=max_steps,
        time=max_steps * spec.period,
        cause=None,
        probes_direct=attacker.probes_sent_direct,
        probes_indirect=attacker.probes_sent_indirect,
        events=events,
        metrics=metrics,
    )


def run_protocol_lifetime(
    spec: SystemSpec,
    seed: int = 0,
    max_steps: int = 500,
    with_workload: bool = False,
    scenario: "ScenarioSpec | None" = None,
    **build_kwargs,
) -> LifetimeOutcome:
    """Run one deployment until compromise or ``max_steps`` whole steps.

    Composition is delegated to :func:`compose_deployment` (see there
    for the ``scenario``/``with_workload`` semantics).
    """
    deployed = compose_deployment(
        spec,
        seed=seed,
        max_steps=max_steps,
        with_workload=with_workload,
        scenario=scenario,
        **build_kwargs,
    )
    deployed.start()
    _run_until(deployed, max_steps * spec.period)
    return outcome_from_deployment(deployed, seed, max_steps)


class CensoredPrecisionError(AnalysisError):
    """A precision-targeted estimate refused a heavily censored sample.

    Carries the outcomes already simulated so callers (e.g. campaign
    runners) can still report a fixed-count lower-bound estimate
    without re-running the slowest (budget-exhausting) simulations.
    """

    def __init__(self, message: str, outcomes: tuple["LifetimeOutcome", ...]):
        super().__init__(message)
        self.outcomes = outcomes


@dataclass(frozen=True)
class ProtocolTask:
    """A batch of protocol-lifetime seeds for one spec (picklable).

    Seeds are fixed by the caller *before* dispatch, which is what makes
    campaign results independent of the worker count and of how seeds
    are grouped into batches.
    """

    spec: SystemSpec
    seeds: tuple[int, ...]
    max_steps: int = 500
    build_kwargs: tuple[tuple[str, Any], ...] = ()
    scenario: "ScenarioSpec | None" = None

    def run(self) -> tuple[LifetimeOutcome, ...]:
        """Evaluate every seed of this batch in the current process."""
        kwargs = dict(self.build_kwargs)
        return tuple(
            run_protocol_lifetime(
                self.spec,
                seed=seed,
                max_steps=self.max_steps,
                scenario=self.scenario,
                **kwargs,
            )
            for seed in self.seeds
        )


def run_protocol_task(task: ProtocolTask) -> tuple[LifetimeOutcome, ...]:
    """Module-level task runner (picklable for process pools)."""
    return task.run()


@dataclass(frozen=True)
class LifetimeEstimate:
    """Aggregated protocol-level lifetime over several seeds.

    Attributes
    ----------
    spec:
        The spec run.
    stats:
        Naive summary of whole steps survived.  Censored runs contribute
        the step budget, so mean and CI are *lower bounds* whenever
        ``censored > 0`` (see :attr:`censoring` for the honest view).
    censored:
        Number of runs that survived the whole budget.
    outcomes:
        Every per-seed :class:`LifetimeOutcome`, in seed order.
    censoring:
        Censoring-aware summary (censored fraction, Kaplan-Meier
        restricted mean).  Derived from ``outcomes`` when omitted.
    converged:
        ``False`` only for precision-targeted estimates that exhausted
        their seed budget before reaching the requested CI half-width.
    estimator:
        Which estimator produced this: ``"mc"`` (plain Monte-Carlo) or
        ``"splitting"`` (rare-event multilevel splitting; ``outcomes``
        then holds the unconditioned pilot wave and :attr:`rare` the
        folded probability estimate).
    rare:
        The :class:`~repro.rare.splitting.RareEventEstimate` when
        ``estimator == "splitting"``, else ``None``.
    events:
        Total simulator events spent producing the estimate — including
        Monte-Carlo rounds abandoned by an ``estimator="auto"`` switch,
        so estimator cost comparisons stay honest.
    """

    spec: SystemSpec
    stats: SummaryStats
    censored: int
    outcomes: tuple[LifetimeOutcome, ...]
    censoring: Optional[CensoredSummary] = field(repr=False, default=None)
    converged: bool = True
    estimator: str = "mc"
    rare: Optional["RareEventEstimate"] = field(repr=False, default=None)
    events: int = 0

    def __post_init__(self) -> None:
        # Derive the censoring summary (and event total) for callers
        # constructing the pre-campaign 4-field form, so km_mean_steps
        # and cost accounting always work.
        if self.censoring is None and self.outcomes:
            object.__setattr__(
                self,
                "censoring",
                summarize_censored(
                    [float(o.steps) for o in self.outcomes],
                    [not o.compromised for o in self.outcomes],
                ),
            )
        if self.events == 0 and self.outcomes:
            object.__setattr__(
                self, "events", sum(o.events for o in self.outcomes)
            )

    @property
    def mean_steps(self) -> float:
        """Mean whole steps survived (censored runs count the budget,
        so this is a lower bound when ``censored > 0``)."""
        return self.stats.mean

    @property
    def censored_fraction(self) -> float:
        """Fraction of runs that outlived the step budget."""
        return self.censored / self.stats.n

    @property
    def km_mean_steps(self) -> float:
        """Kaplan-Meier restricted mean steps survived."""
        return self.censoring.km_mean


def _aggregate(
    spec: SystemSpec,
    outcomes: list[LifetimeOutcome],
    converged: bool = True,
) -> LifetimeEstimate:
    """Fold per-seed outcomes into a censoring-aware estimate."""
    censoring = summarize_censored(
        [float(o.steps) for o in outcomes],
        [not o.compromised for o in outcomes],
    )
    return LifetimeEstimate(
        spec=spec,
        stats=censoring.stats,
        censored=censoring.n_censored,
        outcomes=tuple(outcomes),
        censoring=censoring,
        converged=converged,
    )


def _batched(seeds: list[int], batch_size: int) -> Iterator[tuple[int, ...]]:
    for start in range(0, len(seeds), batch_size):
        yield tuple(seeds[start : start + batch_size])


# ----------------------------------------------------------------------
# Result-cache plumbing
# ----------------------------------------------------------------------
def _outcome_block_payload(
    spec: SystemSpec,
    seeds: list[int],
    max_steps: int,
    build_kwargs: dict,
    scenario: "ScenarioSpec | None",
) -> dict:
    """Cache-key payload for one (spec × seed block) of protocol runs.

    Covers everything that determines the outcomes — and nothing about
    the fan-out (``workers``/``batch_size`` never appear), so cached and
    recomputed results agree bit-for-bit under any executor
    configuration.  ``build_kwargs`` values (e.g. a
    :class:`~repro.core.timing.TimingSpec`) serialize through their
    ``as_dict`` (see :func:`repro.cache.keys.jsonable`).
    """
    return {
        "kind": "protocol_outcomes",
        "spec": spec,
        "seeds": list(seeds),
        "max_steps": max_steps,
        "build_kwargs": dict(build_kwargs),
        "scenario": scenario,
    }


def _outcome_payload(outcome: LifetimeOutcome) -> dict:
    """JSON-ready form of one outcome (spec lives in the cache key)."""
    return {
        "seed": outcome.seed,
        "compromised": outcome.compromised,
        "steps": outcome.steps,
        "time": outcome.time,
        "cause": outcome.cause,
        "probes_direct": outcome.probes_direct,
        "probes_indirect": outcome.probes_indirect,
        "events": outcome.events,
        "metrics": None if outcome.metrics is None else outcome.metrics.as_dict(),
    }


def _outcome_from_entry(spec: SystemSpec, entry: Any) -> LifetimeOutcome:
    """Rebuild one cached outcome; raise on malformed entries."""
    cause = entry["cause"]
    if cause is not None and not isinstance(cause, str):
        raise ValueError("cached outcome carries a malformed cause")
    metrics_payload = entry.get("metrics")
    return LifetimeOutcome(
        spec=spec,
        seed=int(entry["seed"]),
        compromised=bool(entry["compromised"]),
        steps=int(entry["steps"]),
        time=float(entry["time"]),
        cause=cause,
        probes_direct=int(entry["probes_direct"]),
        probes_indirect=int(entry["probes_indirect"]),
        events=int(entry["events"]),
        metrics=(
            None if metrics_payload is None else RunMetrics.from_dict(metrics_payload)
        ),
    )


def _outcomes_from_payload(
    spec: SystemSpec, payload: Any, seeds: list[int]
) -> list[LifetimeOutcome]:
    """Rebuild a cached outcome block; raise if it doesn't match ``seeds``."""
    if not isinstance(payload, list) or len(payload) != len(seeds):
        raise ValueError("cached outcome block does not match the request")
    outcomes: list[LifetimeOutcome] = []
    for seed, entry in zip(seeds, payload):
        if entry["seed"] != seed:
            raise ValueError("cached outcome block does not match the request")
        outcomes.append(_outcome_from_entry(spec, entry))
    return outcomes


def _cache_fetch(
    cache: ResultCache, key: str, spec: SystemSpec, seeds: list[int]
) -> Optional[list[LifetimeOutcome]]:
    """Decoded outcomes for ``key``, or ``None`` on a (possibly
    reclassified) miss."""
    payload = cache.lookup(key)
    if payload is None:
        return None
    try:
        return _outcomes_from_payload(spec, payload, seeds)
    except (KeyError, TypeError, ValueError):
        # A readable entry that doesn't decode to the requested block is
        # as good as corrupt: reclassify the lookup as a miss and let
        # the caller recompute (and overwrite the entry).
        cache.hits -= 1
        cache.misses += 1
        return None


def _dispatch(
    executor: TaskExecutor,
    spec: SystemSpec,
    seeds: list[int],
    max_steps: int,
    batch_size: int,
    build_kwargs: dict,
    scenario: "ScenarioSpec | None" = None,
    cache: Optional[ResultCache] = None,
) -> list[LifetimeOutcome]:
    """Run ``seeds`` through the executor as :class:`ProtocolTask` batches.

    With ``cache`` set, the whole seed block is looked up first — a hit
    skips dispatch entirely — and freshly computed blocks are stored for
    the next run.
    """
    key: Optional[str] = None
    if cache is not None:
        key = cache.key_for(
            _outcome_block_payload(spec, seeds, max_steps, build_kwargs, scenario)
        )
        cached = _cache_fetch(cache, key, spec, seeds)
        if cached is not None:
            return cached
    frozen_kwargs = tuple(sorted(build_kwargs.items()))
    tasks = [
        ProtocolTask(
            spec=spec,
            seeds=batch,
            max_steps=max_steps,
            build_kwargs=frozen_kwargs,
            scenario=scenario,
        )
        for batch in _batched(seeds, batch_size)
    ]
    outcomes: list[LifetimeOutcome] = []
    quarantined = 0
    for batch_outcomes in executor.map(run_protocol_task, tasks):
        if isinstance(batch_outcomes, Quarantined):
            # A supervised executor quarantined this batch: the estimate
            # proceeds on the surviving seeds (the supervisor already
            # manifested the loss); never cache a block with holes.
            quarantined += 1
            continue
        outcomes.extend(batch_outcomes)
    if cache is not None and key is not None and quarantined == 0:
        cache.store(key, [_outcome_payload(o) for o in outcomes])
    return outcomes


def _splitting_estimate(
    spec: SystemSpec,
    *,
    max_steps: int,
    root_seed: int,
    config: "SplittingConfig | None",
    executor: "TaskExecutor | None",
    workers: int | None,
    scenario: "ScenarioSpec | None",
    cache: Optional[ResultCache],
    build_kwargs: dict,
    extra_events: int = 0,
) -> LifetimeEstimate:
    """Wrap a multilevel-splitting run as a :class:`LifetimeEstimate`.

    The estimate's ``outcomes``/``stats`` come from the splitting pilot
    wave — plain unconditioned runs, bit-identical to what ``"mc"``
    would produce for those seeds — while :attr:`LifetimeEstimate.rare`
    carries the folded rare-event probability.  ``extra_events``
    accounts for Monte-Carlo work a preceding ``"auto"`` attempt spent
    before switching.
    """
    from ..rare.splitting import run_splitting  # deferred: layering

    rare = run_splitting(
        spec,
        root_seed=root_seed,
        max_steps=max_steps,
        config=config,
        executor=executor,
        workers=workers,
        scenario=scenario,
        cache=cache,
        **build_kwargs,
    )
    outcomes = list(rare.pilot_outcomes)
    censoring = summarize_censored(
        [float(o.steps) for o in outcomes],
        [not o.compromised for o in outcomes],
    )
    return LifetimeEstimate(
        spec=spec,
        stats=censoring.stats,
        censored=censoring.n_censored,
        outcomes=tuple(outcomes),
        censoring=censoring,
        converged=True,
        estimator="splitting",
        rare=rare,
        events=rare.events + extra_events,
    )


def estimate_protocol_lifetime(
    spec: SystemSpec,
    trials: int = 20,
    max_steps: int = 500,
    seed0: int = 0,
    *,
    workers: int | None = None,
    batch_size: int = DEFAULT_SEED_BATCH,
    precision: float | None = None,
    min_trials: int = 20,
    max_trials: int = 2_000,
    max_censored_fraction: float = DEFAULT_MAX_CENSORED,
    seed_for: Callable[[int], int] | None = None,
    executor: "TaskExecutor | None" = None,
    scenario: "ScenarioSpec | None" = None,
    cache: Optional[ResultCache] = None,
    estimator: str = "mc",
    splitting: "SplittingConfig | None" = None,
    **build_kwargs,
) -> LifetimeEstimate:
    """Estimate the expected lifetime from independent protocol runs.

    Seeds are ``seed0 + i`` (or ``seed_for(i)`` when given), fixed before
    dispatch, and the runs fan out across ``workers`` processes in
    batches of ``batch_size`` seeds — results are bit-identical for any
    worker count or batch size (in precision mode too: streaming rounds
    are sized by the constant :data:`PRECISION_ROUND_SEEDS`, never by
    the fan-out configuration).  Campaign runners can pass a shared
    ``executor`` to reuse one process pool across many estimates; its
    lifetime stays theirs.

    With ``precision=`` set, ``trials`` is ignored as a count: rounds of
    seeds stream in until the 95% CI half-width drops below
    ``precision × |mean|`` (bounded by ``min_trials``/``max_trials``).
    Censored runs make that CI a lower-bound statement, so a precision
    run warns as soon as any run is censored and raises
    :class:`CensoredPrecisionError` once the censored fraction exceeds
    ``max_censored_fraction`` — at that point the interval describes
    the step budget, not the lifetime.

    ``scenario`` composes every run through the scenario runtime
    (adversary strategy, seeded fault plan, workload) — see
    :func:`run_protocol_lifetime`; all fan-out guarantees hold
    unchanged because the scenario travels inside the task.

    ``cache`` consults a :class:`~repro.cache.ResultCache` before every
    dispatch: seed blocks already on disk skip simulation entirely, and
    fresh blocks are stored for the next run.  Because seeds are fixed
    before dispatch, cached and recomputed estimates are bit-identical.

    ``estimator`` selects how censor-heavy points are handled:

    * ``"mc"`` (default) — plain Monte-Carlo, exactly as before;
    * ``"splitting"`` — rare-event multilevel splitting
      (:func:`repro.rare.splitting.run_splitting`, shaped by
      ``splitting=``): the returned estimate's ``outcomes`` are the
      unconditioned pilot wave and its ``rare`` field carries the
      survival-failure probability with CI — resolvable far below what
      ``max_trials`` Monte-Carlo runs could see;
    * ``"auto"`` — Monte-Carlo first, switching to splitting when the
      censored fraction exceeds ``max_censored_fraction`` (for
      precision runs: exactly when :class:`CensoredPrecisionError`
      would have been raised).  Events already spent on the abandoned
      Monte-Carlo rounds are charged to the estimate.
    """
    from ..mc.executor import TaskExecutor  # deferred: avoids cycle

    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if estimator not in ("mc", "splitting", "auto"):
        raise ConfigurationError(
            f"estimator must be 'mc', 'splitting' or 'auto', got {estimator!r}"
        )
    if not 0.0 < max_censored_fraction <= 1.0:
        raise ConfigurationError(
            "max_censored_fraction must be in (0, 1], got "
            f"{max_censored_fraction}"
        )
    if seed_for is None:

        def seed_for(i: int) -> int:
            return seed0 + i

    owns_executor = executor is None
    if executor is None:
        executor = TaskExecutor(workers)
    if estimator == "splitting":
        return _splitting_estimate(
            spec,
            max_steps=max_steps,
            root_seed=seed_for(0),
            config=splitting,
            executor=None if owns_executor else executor,
            workers=workers,
            scenario=scenario,
            cache=cache,
            build_kwargs=build_kwargs,
        )
    if precision is None:
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        seeds = [seed_for(i) for i in range(trials)]
        outcomes = _dispatch(
            executor, spec, seeds, max_steps, batch_size, build_kwargs, scenario, cache
        )
        estimate = _aggregate(spec, outcomes)
        if (
            estimator == "auto"
            and estimate.censored_fraction > max_censored_fraction
        ):
            return _splitting_estimate(
                spec,
                max_steps=max_steps,
                root_seed=seed_for(0),
                config=splitting,
                executor=None if owns_executor else executor,
                workers=workers,
                scenario=scenario,
                cache=cache,
                build_kwargs=build_kwargs,
                extra_events=estimate.events,
            )
        return estimate

    if precision <= 0:
        raise ConfigurationError(f"precision must be positive, got {precision}")
    if not 2 <= min_trials <= max_trials:
        raise ConfigurationError(
            f"need 2 <= min_trials <= max_trials, got {min_trials}, {max_trials}"
        )
    try:
        return _precision_rounds(
            spec,
            executor,
            owns_executor,
            seed_for,
            max_steps=max_steps,
            batch_size=batch_size,
            precision=precision,
            min_trials=min_trials,
            max_trials=max_trials,
            max_censored_fraction=max_censored_fraction,
            scenario=scenario,
            cache=cache,
            build_kwargs=build_kwargs,
        )
    except CensoredPrecisionError as exc:
        if estimator != "auto":
            raise
        # The CI-targeted stopping rule is meaningless on this point;
        # switch to the rare-event estimator, charging the abandoned
        # Monte-Carlo rounds to the estimate.
        return _splitting_estimate(
            spec,
            max_steps=max_steps,
            root_seed=seed_for(0),
            config=splitting,
            executor=None if owns_executor else executor,
            workers=workers,
            scenario=scenario,
            cache=cache,
            build_kwargs=build_kwargs,
            extra_events=sum(o.events for o in exc.outcomes),
        )


def _precision_rounds(
    spec: SystemSpec,
    executor: "TaskExecutor",
    owns_executor: bool,
    seed_for: Callable[[int], int],
    *,
    max_steps: int,
    batch_size: int,
    precision: float,
    min_trials: int,
    max_trials: int,
    max_censored_fraction: float,
    scenario: "ScenarioSpec | None",
    cache: Optional[ResultCache],
    build_kwargs: dict,
) -> LifetimeEstimate:
    """Stream seed rounds until the CI converges (the ``precision=`` path)."""
    round_size = PRECISION_ROUND_SEEDS
    outcomes: list[LifetimeOutcome] = []
    warned_censored = False
    converged = False
    # Hold one pool open across the streaming rounds: early stopping
    # dispatches many small rounds, and paying pool startup per round
    # would swamp the parallel speedup.  (A caller-supplied executor is
    # left open — its owner manages the pool's lifetime.)
    with ExitStack() as stack:
        if owns_executor:
            stack.enter_context(executor)
        while len(outcomes) < max_trials:
            take = min(round_size, max_trials - len(outcomes))
            seeds = [seed_for(len(outcomes) + i) for i in range(take)]
            outcomes.extend(
                _dispatch(
                    executor,
                    spec,
                    seeds,
                    max_steps,
                    batch_size,
                    build_kwargs,
                    scenario,
                    cache,
                )
            )
            if len(outcomes) < min_trials:
                continue
            estimate = _aggregate(spec, outcomes, converged=False)
            if estimate.censored_fraction > max_censored_fraction:
                raise CensoredPrecisionError(
                    f"{spec.label}: {estimate.censored} of {estimate.stats.n} "
                    f"protocol runs were censored at the {max_steps}-step "
                    f"budget (fraction {estimate.censored_fraction:.2f} > "
                    f"{max_censored_fraction:.2f}); the requested precision "
                    "target is meaningless — raise max_steps or drop "
                    "precision=",
                    outcomes=tuple(outcomes),
                )
            if estimate.censored and not warned_censored:
                warnings.warn(
                    f"{spec.label}: {estimate.censored} of {estimate.stats.n} "
                    "protocol runs censored at the step budget; the mean and "
                    "CI are lower bounds on the true lifetime",
                    RuntimeWarning,
                    stacklevel=2,
                )
                warned_censored = True
            scale = max(abs(estimate.stats.mean), 1e-300)
            if estimate.stats.ci_halfwidth <= precision * scale:
                converged = True
                break
    return _aggregate(spec, outcomes, converged=converged)
