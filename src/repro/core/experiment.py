"""Protocol-level lifetime experiments.

This is the highest-fidelity (and most expensive) of the three
evaluation methods: a full deployment is built, the attacker campaign
mounted, and the simulation run until the compromise monitor fires or a
step budget is exhausted.  Used to validate the fast Monte-Carlo models
and the analytic lifetimes against an implementation that actually
exchanges protocol messages, crashes processes and reboots nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..metrics.stats import SummaryStats, summarize
from .builders import add_clients, attach_attacker, build_system
from .specs import SystemSpec


@dataclass(frozen=True)
class LifetimeOutcome:
    """Result of one protocol-level lifetime run.

    Attributes
    ----------
    spec, seed:
        What was run.
    compromised:
        Whether the system fell within the step budget.
    steps:
        Whole unit time-steps survived (Definition 7).  Equal to the
        budget when censored (``compromised`` is False).
    time:
        Simulated time of compromise (or the horizon).
    cause:
        Human-readable compromise cause, if any.
    probes_direct, probes_indirect:
        Attacker effort expended.
    """

    spec: SystemSpec
    seed: int
    compromised: bool
    steps: int
    time: float
    cause: Optional[str]
    probes_direct: int
    probes_indirect: int


def run_protocol_lifetime(
    spec: SystemSpec,
    seed: int = 0,
    max_steps: int = 500,
    with_workload: bool = False,
    **build_kwargs,
) -> LifetimeOutcome:
    """Run one deployment until compromise or ``max_steps`` whole steps.

    ``build_kwargs`` pass through to :func:`~repro.core.builders.build_system`.
    """
    deployed = build_system(spec, seed=seed, **build_kwargs)
    attacker = attach_attacker(deployed)
    if with_workload:
        add_clients(deployed, count=1)
    deployed.start()
    horizon = max_steps * spec.period
    deployed.sim.run(until=horizon)
    monitor = deployed.monitor
    if monitor.is_compromised:
        steps = monitor.steps_survived
        assert steps is not None
        return LifetimeOutcome(
            spec=spec,
            seed=seed,
            compromised=True,
            steps=min(steps, max_steps),
            time=monitor.compromised_at or deployed.sim.now,
            cause=monitor.cause,
            probes_direct=attacker.probes_sent_direct,
            probes_indirect=attacker.probes_sent_indirect,
        )
    return LifetimeOutcome(
        spec=spec,
        seed=seed,
        compromised=False,
        steps=max_steps,
        time=horizon,
        cause=None,
        probes_direct=attacker.probes_sent_direct,
        probes_indirect=attacker.probes_sent_indirect,
    )


@dataclass(frozen=True)
class LifetimeEstimate:
    """Aggregated protocol-level lifetime over several seeds."""

    spec: SystemSpec
    stats: SummaryStats
    censored: int
    outcomes: tuple[LifetimeOutcome, ...]

    @property
    def mean_steps(self) -> float:
        """Mean whole steps survived (censored runs count the budget,
        so this is a lower bound when ``censored > 0``)."""
        return self.stats.mean


def estimate_protocol_lifetime(
    spec: SystemSpec,
    trials: int = 20,
    max_steps: int = 500,
    seed0: int = 0,
    **build_kwargs,
) -> LifetimeEstimate:
    """Estimate the expected lifetime from ``trials`` independent runs."""
    outcomes = [
        run_protocol_lifetime(spec, seed=seed0 + i, max_steps=max_steps, **build_kwargs)
        for i in range(trials)
    ]
    steps = [o.steps for o in outcomes]
    return LifetimeEstimate(
        spec=spec,
        stats=summarize(steps),
        censored=sum(1 for o in outcomes if not o.compromised),
        outcomes=tuple(outcomes),
    )
