"""System specifications: the paper's candidate systems as data.

A :class:`SystemSpec` fully determines one system under evaluation —
system class (S0/S1/S2), randomization scheme (PO/SO), key entropy,
attacker strength, and the FORTRESS-specific parameters κ (indirect
attack coefficient) and λ (launch-pad fraction).  The same spec drives
all three evaluation methods: analytic models
(:mod:`repro.analysis.lifetimes`), Monte-Carlo samplers
(:mod:`repro.mc.models`) and the protocol-level simulation
(:mod:`repro.core.experiment`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..randomization.keyspace import PAX_32BIT_ENTROPY, KeySpace
from ..randomization.obfuscation import Scheme


class SystemClass(enum.Enum):
    """The three system classes of the paper (Definitions 1-3)."""

    S0 = "S0"  # 1-tier, state machine replication, 4 diverse replicas
    S1 = "S1"  # 1-tier, primary-backup, 3 identically randomized servers
    S2 = "S2"  # 2-tier FORTRESS: 3 proxies + 3 PB servers


@dataclass(frozen=True)
class SystemSpec:
    """Everything needed to instantiate (or model) one candidate system.

    Attributes
    ----------
    system:
        Which of the paper's system classes this is.
    scheme:
        :attr:`~repro.randomization.obfuscation.Scheme.PO` (fresh keys
        each step) or :attr:`~repro.randomization.obfuscation.Scheme.SO`
        (start-up-only randomization + proactive recovery).
    entropy_bits:
        Randomization key entropy; χ = 2**entropy_bits (paper: 16).
    alpha:
        Per-step success probability of a direct attack on a freshly
        randomized node (Definition 6).  The attacker's probe budget is
        derived as ω = α·χ.
    kappa:
        Indirect attack coefficient (Definition 5); only meaningful for
        S2.
    launchpad_fraction:
        λ — success scale of a same-step launch-pad attack fired from a
        proxy compromised earlier in that step (the paper leaves the
        within-step timing unspecified; λ = 1 is the strongest attacker).
    n_servers, n_proxies:
        Tier sizes; defaults follow the paper (4 SMR replicas; 3 PB
        servers; 3 proxies).
    f:
        SMR fault threshold (S0 is 1-tolerant).
    period:
        Length of the unit time-step in simulated time.
    """

    system: SystemClass
    scheme: Scheme
    entropy_bits: int = PAX_32BIT_ENTROPY
    alpha: float = 0.001
    kappa: float = 0.5
    launchpad_fraction: float = 1.0
    n_servers: int = 0  # 0 -> class default
    n_proxies: int = 0  # 0 -> class default
    f: int = 1
    period: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")
        if not 0.0 <= self.kappa <= 1.0:
            raise ConfigurationError(f"kappa must be in [0, 1], got {self.kappa}")
        if not 0.0 <= self.launchpad_fraction <= 1.0:
            raise ConfigurationError(
                f"launchpad_fraction must be in [0, 1], got {self.launchpad_fraction}"
            )
        if self.period <= 0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        defaults = {SystemClass.S0: 4, SystemClass.S1: 3, SystemClass.S2: 3}
        servers = self.n_servers or defaults[self.system]
        if self.system is SystemClass.S0 and servers <= 3 * self.f:
            raise ConfigurationError(
                f"S0 needs n > 3f replicas (n={servers}, f={self.f})"
            )
        if servers < 1:
            raise ConfigurationError("need at least one server")
        object.__setattr__(self, "n_servers", servers)
        proxies = self.n_proxies or (3 if self.system is SystemClass.S2 else 0)
        if self.system is SystemClass.S2 and proxies < 1:
            raise ConfigurationError("S2 needs at least one proxy")
        object.__setattr__(self, "n_proxies", proxies)

    # ------------------------------------------------------------------
    @property
    def keyspace(self) -> KeySpace:
        """The key space implied by ``entropy_bits``."""
        return KeySpace(self.entropy_bits)

    @property
    def chi(self) -> int:
        """χ — number of possible randomization keys."""
        return self.keyspace.size

    @property
    def omega(self) -> float:
        """ω — attacker probes per unit time-step (= α·χ)."""
        return self.alpha * self.chi

    @property
    def label(self) -> str:
        """Short name used in the paper, e.g. ``"S2PO"``."""
        scheme = "PO" if self.scheme is Scheme.PO else "SO"
        return f"{self.system.value}{scheme}"

    def as_dict(self) -> dict:
        """JSON-ready plain-dict form (enum members by name).

        Covers *every* field, so two specs serialize equal iff they are
        equal — the property the content-addressed result cache keys
        rely on (:mod:`repro.cache.keys`).
        """
        return {
            "system": self.system.value,
            "scheme": self.scheme.name,
            "entropy_bits": self.entropy_bits,
            "alpha": self.alpha,
            "kappa": self.kappa,
            "launchpad_fraction": self.launchpad_fraction,
            "n_servers": self.n_servers,
            "n_proxies": self.n_proxies,
            "f": self.f,
            "period": self.period,
        }

    def with_alpha(self, alpha: float) -> "SystemSpec":
        """Copy of this spec at a different attacker strength."""
        return replace(self, alpha=alpha)

    def with_kappa(self, kappa: float) -> "SystemSpec":
        """Copy of this spec at a different indirect attack coefficient."""
        return replace(self, kappa=kappa)


# ----------------------------------------------------------------------
# Paper configurations
# ----------------------------------------------------------------------
def s0(scheme: Scheme, alpha: float = 0.001, **kwargs) -> SystemSpec:
    """S0: 4-replica SMR (Definition 1)."""
    return SystemSpec(system=SystemClass.S0, scheme=scheme, alpha=alpha, **kwargs)


def s1(scheme: Scheme, alpha: float = 0.001, **kwargs) -> SystemSpec:
    """S1: 3-server primary-backup (Definition 2)."""
    return SystemSpec(system=SystemClass.S1, scheme=scheme, alpha=alpha, **kwargs)


def s2(
    scheme: Scheme, alpha: float = 0.001, kappa: float = 0.5, **kwargs
) -> SystemSpec:
    """S2: FORTRESS with n_s = n_p = 3 (Definition 3)."""
    return SystemSpec(
        system=SystemClass.S2, scheme=scheme, alpha=alpha, kappa=kappa, **kwargs
    )


def paper_systems(alpha: float = 0.001, kappa: float = 0.5) -> list[SystemSpec]:
    """The five systems plotted in Figure 1, in the paper's order."""
    return [
        s0(Scheme.PO, alpha),
        s2(Scheme.PO, alpha, kappa),
        s1(Scheme.PO, alpha),
        s1(Scheme.SO, alpha),
        s0(Scheme.SO, alpha),
    ]
