"""FORTRESS core: system specs, builders, compromise monitoring, experiments."""

from .builders import (
    SERVER_POOL,
    DeployedSystem,
    add_clients,
    attach_attacker,
    build_system,
)
from .clients import WorkloadClient, default_body_factory
from .compromise import CompromiseMonitor
from .experiment import (
    LifetimeEstimate,
    LifetimeOutcome,
    estimate_protocol_lifetime,
    run_protocol_lifetime,
)
from .specs import SystemClass, SystemSpec, paper_systems, s0, s1, s2

__all__ = [
    "SERVER_POOL",
    "DeployedSystem",
    "add_clients",
    "attach_attacker",
    "build_system",
    "WorkloadClient",
    "default_body_factory",
    "CompromiseMonitor",
    "LifetimeEstimate",
    "LifetimeOutcome",
    "estimate_protocol_lifetime",
    "run_protocol_lifetime",
    "SystemClass",
    "SystemSpec",
    "paper_systems",
    "s0",
    "s1",
    "s2",
]
