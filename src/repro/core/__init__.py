"""FORTRESS core: system specs, timing, builders, compromise monitoring,
experiments.

This package init is *lazy* (PEP 562): the low-level substrates
(:mod:`repro.sim`, :mod:`repro.net`, …) import defaults from
:mod:`repro.core.timing`, so an eager ``from .builders import …`` here
would close an import cycle through the whole protocol stack.  Symbols
resolve on first attribute access instead; ``from repro.core import
build_system`` works exactly as before.
"""

from __future__ import annotations

_EXPORTS = {
    "SERVER_POOL": "builders",
    "DeployedSystem": "builders",
    "add_clients": "builders",
    "attach_attacker": "builders",
    "build_system": "builders",
    "CampaignResult": "campaign",
    "campaign_grid": "campaign",
    "campaign_record": "campaign",
    "run_campaign": "campaign",
    "run_scenario_campaign": "campaign",
    "WorkloadClient": "clients",
    "default_body_factory": "clients",
    "CompromiseMonitor": "compromise",
    "CensoredPrecisionError": "experiment",
    "LifetimeEstimate": "experiment",
    "LifetimeOutcome": "experiment",
    "ProtocolTask": "experiment",
    "estimate_protocol_lifetime": "experiment",
    "run_protocol_lifetime": "experiment",
    "run_protocol_task": "experiment",
    "SystemClass": "specs",
    "SystemSpec": "specs",
    "paper_systems": "specs",
    "s0": "specs",
    "s1": "specs",
    "s2": "specs",
    "DEFAULT_TIMING": "timing",
    "EffectiveAttack": "timing",
    "TimingSpec": "timing",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
