"""FORTRESS core: system specs, builders, compromise monitoring, experiments."""

from .builders import (
    SERVER_POOL,
    DeployedSystem,
    add_clients,
    attach_attacker,
    build_system,
)
from .campaign import CampaignResult, campaign_grid, run_campaign
from .clients import WorkloadClient, default_body_factory
from .compromise import CompromiseMonitor
from .experiment import (
    CensoredPrecisionError,
    LifetimeEstimate,
    LifetimeOutcome,
    ProtocolTask,
    estimate_protocol_lifetime,
    run_protocol_lifetime,
    run_protocol_task,
)
from .specs import SystemClass, SystemSpec, paper_systems, s0, s1, s2

__all__ = [
    "SERVER_POOL",
    "DeployedSystem",
    "add_clients",
    "attach_attacker",
    "build_system",
    "WorkloadClient",
    "default_body_factory",
    "CompromiseMonitor",
    "CensoredPrecisionError",
    "CampaignResult",
    "campaign_grid",
    "run_campaign",
    "LifetimeEstimate",
    "LifetimeOutcome",
    "ProtocolTask",
    "estimate_protocol_lifetime",
    "run_protocol_lifetime",
    "run_protocol_task",
    "SystemClass",
    "SystemSpec",
    "paper_systems",
    "s0",
    "s1",
    "s2",
]
