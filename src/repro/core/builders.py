"""Builders: turn a :class:`~repro.core.specs.SystemSpec` into a running
protocol-level deployment.

``build_system`` wires the full stack — network, PKI, name server, server
tier (SMR or PB), proxy tier for S2, obfuscation manager, compromise
monitor.  ``attach_attacker`` then mounts the paper's attack campaign on
top, and ``add_clients`` adds legitimate workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Optional

from ..attacker.agent import AttackerProcess
from ..crypto.signatures import SignatureAuthority
from ..errors import ConfigurationError
from ..net.latency import FixedLatency, LatencyModel
from ..net.network import Network
from ..proxy.detection import DetectionPolicy
from ..proxy.nameserver import Directory, NameServer
from ..proxy.proxy import ProxyNode
from ..randomization.obfuscation import ObfuscationManager, Scheme
from ..replication.primary_backup import PBServer
from ..replication.smr import SMRReplica
from ..replication.state_machine import KVStoreService, Service
from ..sim.engine import Simulator
from .clients import WorkloadClient
from .compromise import CompromiseMonitor
from .specs import SystemClass, SystemSpec
from .timing import DEFAULT_TIMING, TimingSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector
    from ..randomization.node import RandomizedProcess

#: Shared key-pool id of an identically randomized server tier.
SERVER_POOL = "server-tier"

#: How a direct probe stream is mounted on one target: scenario
#: adversaries (stealth, coordinated) swap this while the campaign
#: wiring of :func:`attach_attacker` stays single-sourced.
DirectAttack = Callable[[AttackerProcess, "RandomizedProcess", Optional[str]], object]

ServiceFactory = Callable[[int], Service]


def _default_service_factory(index: int) -> Service:
    return KVStoreService()


@dataclass
class DeployedSystem:
    """A fully wired protocol-level deployment.

    Produced by :func:`build_system`; holds every top-level component so
    tests, examples and experiments can reach into the stack.
    """

    spec: SystemSpec
    sim: Simulator
    network: Network
    authority: SignatureAuthority
    servers: list
    proxies: list[ProxyNode]
    nameserver: NameServer
    obfuscation: ObfuscationManager
    monitor: CompromiseMonitor
    timing: TimingSpec = DEFAULT_TIMING
    attacker: Optional[AttackerProcess] = None
    clients: list[WorkloadClient] = field(default_factory=list)
    #: Set by the scenario runtime when a fault plan is scheduled.
    injector: Optional["FaultInjector"] = None

    @property
    def server_names(self) -> list[str]:
        return [s.name for s in self.servers]

    @property
    def proxy_names(self) -> list[str]:
        return [p.name for p in self.proxies]

    def start(self) -> None:
        """Start the epoch schedule and any configured clients."""
        self.obfuscation.start()
        for client in self.clients:
            client.start()


def build_system(
    spec: SystemSpec,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    service_factory: ServiceFactory = _default_service_factory,
    detection_policy: Optional[DetectionPolicy] = None,
    timing: Optional[TimingSpec] = None,
    respawn_delay: Optional[float] = None,
    reboot_duration: float = 0.0,
    stop_on_compromise: bool = True,
    s2_server_tier: str = "primary-backup",
    stagger_recovery: bool = False,
) -> DeployedSystem:
    """Instantiate the deployment described by ``spec``.

    Parameters
    ----------
    spec:
        System class, scheme and parameters.
    seed:
        Root seed; every stochastic component derives its stream from it.
    latency:
        Network latency model; overrides the fixed
        ``timing.reconnect_latency`` when given.
    service_factory:
        Builds the service instance hosted by each server (by index).
        Must produce deterministic services for SMR tiers.
    detection_policy:
        Proxy detection parameters (S2 only).
    timing:
        The deployment's :class:`~repro.core.timing.TimingSpec` —
        respawn delay, network latency, probe pacing, refresh stagger
        and detection lag, threaded into every component below.
        Defaults to :meth:`TimingSpec.paper` (the stack's historical
        constants).
    respawn_delay:
        Back-compatible override of ``timing.respawn_delay``.
    reboot_duration:
        Node downtime at each epoch refresh (paper default: instant).
    stop_on_compromise:
        Halt the simulation when the system-level predicate fires.
    s2_server_tier:
        FORTRESS supports any server-tier replication (§3).  The paper's
        S2 fortifies primary-backup (the default); pass ``"smr"`` to
        fortify an SMR tier instead (the spec then needs
        ``n_servers > 3f`` diversely randomized replicas).
    stagger_recovery:
        Refresh SMR replicas in staggered batches of one, spread across
        the *whole* period (Roeder-Schneider style, §2.3) regardless of
        ``timing.epoch_stagger``.  With a non-zero ``reboot_duration``
        this keeps at least ``n − 1`` replicas up at every instant, so
        the order protocol never stalls during refreshes.
    """
    if s2_server_tier not in ("primary-backup", "smr"):
        raise ConfigurationError(f"unknown server tier {s2_server_tier!r}")
    timing = DEFAULT_TIMING if timing is None else timing
    if respawn_delay is not None:
        timing = replace(timing, respawn_delay=respawn_delay)
    smr_tier = spec.system is SystemClass.S0 or (
        spec.system is SystemClass.S2 and s2_server_tier == "smr"
    )
    if smr_tier and spec.system is SystemClass.S2 and spec.n_servers <= 3 * spec.f:
        raise ConfigurationError(
            f"a fortified SMR tier needs n > 3f servers "
            f"(n={spec.n_servers}, f={spec.f}); pass n_servers explicitly"
        )

    sim = Simulator(seed=seed)
    network = Network(sim, latency=latency or FixedLatency(timing.reconnect_latency))
    authority = SignatureAuthority(sim.rng.stream("authority"))
    keyspace = spec.keyspace

    servers: list = []
    proxies: list[ProxyNode] = []
    obfuscation = ObfuscationManager(
        sim, spec.scheme, period=spec.period, reboot_duration=reboot_duration
    )

    if smr_tier:
        for i in range(spec.n_servers):
            service = service_factory(i)
            if not service.deterministic:
                raise ConfigurationError(
                    "an SMR tier replicates a deterministic state machine; "
                    f"{type(service).__name__} is not deterministic"
                )
            replica = SMRReplica(
                sim,
                name=f"replica-{i}",
                index=i,
                keyspace=keyspace,
                rng=sim.rng.stream(f"keys:replica-{i}"),
                service=service,
                authority=authority,
                network=network,
                f=spec.f,
                respawn_delay=timing.respawn_delay,
            )
            network.register(replica)
            servers.append(replica)
            # Diverse randomization; staggered in batches of one across
            # a configurable slice of the period (exit, refresh, re-join
            # — §2.3).  ``stagger_recovery`` forces the full spread.
            stagger = 1.0 if stagger_recovery else timing.epoch_stagger
            offset = i * stagger * spec.period / spec.n_servers
            obfuscation.add_node(replica, offset=offset)
        names = [s.name for s in servers]
        for replica in servers:
            replica.configure(names)
    else:
        for i in range(spec.n_servers):
            server = PBServer(
                sim,
                name=f"server-{i}",
                index=i,
                keyspace=keyspace,
                rng=sim.rng.stream(f"keys:server-{i}"),
                service=service_factory(i),
                authority=authority,
                network=network,
                respawn_delay=timing.respawn_delay,
            )
            network.register(server)
            servers.append(server)
        names = [s.name for s in servers]
        for server in servers:
            server.configure(names)
        # PB servers are randomized identically (one key group): state
        # updates then need no representation conversion (paper §3).
        obfuscation.add_group(servers)

    if spec.system is SystemClass.S2:
        for i in range(spec.n_proxies):
            proxy = ProxyNode(
                sim,
                name=f"proxy-{i}",
                keyspace=keyspace,
                rng=sim.rng.stream(f"keys:proxy-{i}"),
                authority=authority,
                network=network,
                policy=detection_policy,
                request_timeout=timing.detection_lag,
                respawn_delay=timing.respawn_delay,
                server_replication="smr" if smr_tier else "primary-backup",
                fault_threshold=spec.f if smr_tier else 0,
            )
            network.register(proxy)
            proxy.configure([s.name for s in servers])
            proxies.append(proxy)
            # Proxies are diversely randomized; their refreshes spread
            # over ``epoch_stagger`` of the period like any diverse tier.
            obfuscation.add_node(
                proxy,
                offset=i * timing.epoch_stagger * spec.period / spec.n_proxies,
            )
        # Fortification: servers accept traffic only from proxies, their
        # peers (state updates) and the name server; and no connections
        # from outside the proxy tier.
        proxy_names = {p.name for p in proxies}
        server_names = {s.name for s in servers}
        for server in servers:
            server.allowed_senders = proxy_names | server_names | {"nameserver"}
            server.allowed_connection_initiators = set(proxy_names)

    directory = _make_directory(spec, servers, proxies, authority, smr_tier)
    nameserver = NameServer(sim, network, directory)
    network.register(nameserver)

    monitor = CompromiseMonitor(
        sim,
        spec.system,
        servers=servers,
        proxies=proxies,
        f=spec.f,
        period=spec.period,
        stop_on_compromise=stop_on_compromise,
        server_tier_f=(spec.f if (smr_tier and spec.system is SystemClass.S2) else 0),
    )

    return DeployedSystem(
        spec=spec,
        sim=sim,
        network=network,
        authority=authority,
        servers=servers,
        proxies=proxies,
        nameserver=nameserver,
        obfuscation=obfuscation,
        monitor=monitor,
        timing=timing,
    )


def _make_directory(
    spec: SystemSpec,
    servers: list,
    proxies: list[ProxyNode],
    authority: SignatureAuthority,
    smr_tier: bool,
) -> Directory:
    """Publish what the paper allows clients to know (§3)."""
    directory = Directory(
        replication="smr" if smr_tier else "primary-backup",
        fault_threshold=spec.f if smr_tier else 0,
    )
    directory.server_indices = [s.index for s in servers]
    directory.server_keys = {s.index: authority.public_key_of(s.name) for s in servers}
    if spec.system is SystemClass.S2:
        directory.proxy_addresses = [p.name for p in proxies]
        directory.proxy_keys = {
            p.name: authority.public_key_of(p.name) for p in proxies
        }
        # Server *addresses* stay hidden behind the proxies.
    else:
        directory.server_addresses = {s.index: s.name for s in servers}
    return directory


def attach_attacker(
    deployed: DeployedSystem,
    direct: Optional[DirectAttack] = None,
    indirect_identities: int = 1,
) -> AttackerProcess:
    """Mount the §4 attack campaign wiring on a deployment.

    * S0 — direct probe streams at every replica (diverse pools);
    * S1 — one direct stream at the server tier's shared pool;
    * S2 — direct streams at every proxy, paced indirect probing of the
      servers at κ·ω, and the launch-pad strategy armed.

    ``direct`` swaps how each direct stream is driven (the scenario
    subsystem passes duty-cycled or coordinated variants — see
    :mod:`repro.attacker.strategies`); the default is the paper's
    full-rate :meth:`~repro.attacker.agent.AttackerProcess.attack_direct`.
    ``indirect_identities`` rotates that many spoofed client identities
    through the indirect stream (the coordinated adversary matches it
    to its agent count).
    """
    spec = deployed.spec
    if deployed.attacker is not None:
        raise ConfigurationError("attacker already attached")
    if direct is None:

        def direct(attacker, target, pool_id=None):
            return attacker.attack_direct(target, pool_id=pool_id)

    attacker = AttackerProcess(
        deployed.sim,
        deployed.network,
        keyspace=spec.keyspace,
        omega=spec.omega,
        period=spec.period,
        reset_pools_on_epoch=(spec.scheme is Scheme.PO),
        probe_pacing=deployed.timing.probe_pacing,
    )
    deployed.network.register(attacker)
    deployed.obfuscation.add_epoch_listener(attacker.on_epoch)

    if spec.system is SystemClass.S0:
        for replica in deployed.servers:
            direct(attacker, replica)
    elif spec.system is SystemClass.S1:
        # The servers share one key: extra streams would re-test the same
        # pool, so the attacker aims one full-rate stream at the tier.
        direct(attacker, deployed.servers[0], SERVER_POOL)
        for server in deployed.servers[1:]:
            server.add_compromise_listener(attacker._on_node_compromised)
    else:  # S2
        for proxy in deployed.proxies:
            direct(attacker, proxy)
        attacker.attack_indirect(
            proxies=deployed.proxy_names,
            servers=deployed.servers,
            pool_id=SERVER_POOL,
            rate=spec.kappa * spec.omega,
            identities=indirect_identities,
        )
        pb_tier = isinstance(deployed.servers[0], PBServer)
        if spec.launchpad_fraction > 0 and pb_tier:
            # The launch pad exploits the PB tier's *shared* key pool;
            # against a fortified SMR tier (diverse keys, f-tolerant) a
            # single launch-pad stream gains the attacker nothing, so
            # none is armed.
            attacker.enable_launchpad(
                proxies=deployed.proxies,
                servers=deployed.server_names,
                pool_id=SERVER_POOL,
            )
    deployed.attacker = attacker
    return attacker


def add_clients(
    deployed: DeployedSystem,
    count: int = 1,
    **client_kwargs,
) -> list[WorkloadClient]:
    """Add ``count`` workload clients in the mode matching the system."""
    mode = {
        SystemClass.S0: "smr",
        SystemClass.S1: "pb",
        SystemClass.S2: "fortress",
    }[deployed.spec.system]
    targets = (
        deployed.proxy_names
        if deployed.spec.system is SystemClass.S2
        else deployed.server_names
    )
    clients = []
    for _ in range(count):
        client = WorkloadClient(
            deployed.sim,
            deployed.network,
            deployed.authority,
            mode=mode,
            targets=targets,
            f=deployed.spec.f,
            **client_kwargs,
        )
        deployed.network.register(client)
        deployed.clients.append(client)
        clients.append(client)
    return clients
