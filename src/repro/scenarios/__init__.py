"""Scenarios: declarative, named compositions of the scenario space.

A scenario composes a system grid × timing preset × adversary strategy
× seeded fault plan × workload into one registered, campaign-runnable
name (``python -m repro scenario list|show|run``).  See
:mod:`repro.scenarios.spec` for the data model,
:mod:`repro.scenarios.library` for the built-ins and
:mod:`repro.scenarios.runtime` for deployment.
"""

from .registry import (
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from .runtime import (
    build_fault_plan,
    deploy_scenario,
    install_workload,
    mount_adversary,
)
from .spec import AdversarySpec, FaultPlanSpec, ScenarioSpec, WorkloadSpec

__all__ = [
    "AdversarySpec",
    "FaultPlanSpec",
    "ScenarioSpec",
    "WorkloadSpec",
    "all_scenarios",
    "build_fault_plan",
    "deploy_scenario",
    "get_scenario",
    "install_workload",
    "mount_adversary",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
]
