"""The scenario registry: named specs, discoverable and extensible.

Scenarios register through the :func:`register_scenario` decorator on a
zero-argument factory (the toolsaf ``builder_backend`` idiom: the
decorated callable *is* the declaration, evaluated once at import):

    @register_scenario
    def my_scenario() -> ScenarioSpec:
        return ScenarioSpec(name="my-scenario", ...)

The built-in library (:mod:`repro.scenarios.library`) loads lazily on
first lookup, so importing :mod:`repro.scenarios` stays cheap and user
registrations can happen before or after the built-ins land.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from .spec import ScenarioSpec

ScenarioFactory = Callable[[], ScenarioSpec]

_REGISTRY: dict[str, ScenarioSpec] = {}
_library_loaded = False


def register_scenario(factory: ScenarioFactory) -> ScenarioFactory:
    """Register the :class:`ScenarioSpec` built by ``factory()``.

    The factory runs once, at decoration time; its spec is registered
    under its own ``name``.  Duplicate names are configuration errors —
    a scenario's name is its identity in campaign records.
    """
    spec = factory()
    if not isinstance(spec, ScenarioSpec):
        raise ConfigurationError(
            f"scenario factory {factory.__name__!r} returned "
            f"{type(spec).__name__}, not a ScenarioSpec"
        )
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return factory


def _ensure_library() -> None:
    global _library_loaded
    if not _library_loaded:
        _library_loaded = True
        from . import library  # noqa: F401  (registers the built-ins)


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name."""
    _ensure_library()
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ConfigurationError(f"unknown scenario {name!r}; registered: {known}")
    return spec


def scenario_names() -> list[str]:
    """All registered scenario names, in registration order."""
    _ensure_library()
    return list(_REGISTRY)


def all_scenarios() -> list[ScenarioSpec]:
    """All registered scenarios, in registration order."""
    _ensure_library()
    return list(_REGISTRY.values())


def unregister_scenario(name: str) -> None:
    """Remove a registration (tests use this to stay hermetic)."""
    _REGISTRY.pop(name, None)
