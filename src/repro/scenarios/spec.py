"""Declarative scenario specifications.

A :class:`ScenarioSpec` names one *composition* of everything the stack
can vary: a :class:`~repro.core.specs.SystemSpec` grid (system classes ×
schemes × α × κ at one key entropy), a
:class:`~repro.core.timing.TimingSpec` preset, an adversary strategy, a
seeded fault plan and an optional workload.  Specs are frozen, picklable
data — they travel inside :class:`~repro.core.experiment.ProtocolTask`
batches to worker processes, and they round-trip through plain dicts /
JSON so scenario campaign records stay diffable exactly like
:func:`~repro.core.campaign.campaign_record` outputs.

Nothing here touches a simulator: interpretation lives in
:mod:`repro.scenarios.runtime`, registration in
:mod:`repro.scenarios.registry`, the built-in library in
:mod:`repro.scenarios.library`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from ..core.specs import SystemSpec
from ..core.timing import TimingSpec
from ..errors import ConfigurationError

#: Adversary strategy names (see :mod:`repro.attacker.strategies`).
ADVERSARY_KINDS = ("paper", "stealth", "coordinated")

#: Fault-plan generator names (see :mod:`repro.faults.plans`).
FAULT_KINDS = (
    "none",
    "crash_storm",
    "rolling_outages",
    "attacker_partition",
    "loss_windows",
)

#: Deployment tiers a fault plan can target.
FAULT_TIERS = ("servers", "proxies", "all")

#: Workload shapes (see :mod:`repro.workloads.openloop` and
#: :mod:`repro.core.clients`).
WORKLOAD_KINDS = ("none", "open_loop", "closed_loop")


@dataclass(frozen=True)
class AdversarySpec:
    """Which attack strategy a scenario mounts.

    Attributes
    ----------
    kind:
        ``"paper"`` — the stock §4 campaign;
        ``"stealth"`` — duty-cycled direct probing
        (:class:`~repro.attacker.strategies.DutyCycledProbeDriver`);
        ``"coordinated"`` — direct probing split across cooperating
        agent machines
        (:class:`~repro.attacker.strategies.CoordinatedAgent`), with
        indirect probing rotating the same number of spoofed
        identities.
    duty_fraction, cycle_periods:
        Stealth only: fraction of each cycle spent probing, and cycle
        length in periods.
    agents:
        Coordinated only: number of cooperating attacker machines.
    """

    kind: str = "paper"
    duty_fraction: float = 0.5
    cycle_periods: float = 2.0
    agents: int = 3

    def __post_init__(self) -> None:
        if self.kind not in ADVERSARY_KINDS:
            raise ConfigurationError(
                f"unknown adversary kind {self.kind!r}; "
                f"choose from {ADVERSARY_KINDS}"
            )
        if not 0.0 < self.duty_fraction <= 1.0:
            raise ConfigurationError(
                f"duty_fraction must be in (0, 1], got {self.duty_fraction}"
            )
        if self.cycle_periods <= 0:
            raise ConfigurationError(
                f"cycle_periods must be positive, got {self.cycle_periods}"
            )
        if self.agents < 1:
            raise ConfigurationError(f"agents must be >= 1, got {self.agents}")

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AdversarySpec":
        return cls(**data)


@dataclass(frozen=True)
class FaultPlanSpec:
    """A seeded fault plan, as data.

    The plan itself is *generated at run time* from the deployment's
    seeded RNG (stream ``"scenario:faults"``), so every seed gets its
    own reproducible plan and results stay worker/batch invariant.  All
    times and rates are in **steps** (multiples of the spec's period).

    Field applicability by ``kind``:

    * ``crash_storm`` — ``rate`` (events/step), ``outage_probability``,
      ``outage_steps``, ``tier``, ``start_step``;
    * ``rolling_outages`` — ``period_steps``, ``down_steps``, ``tier``,
      ``start_step`` (rounds derived from the run's horizon);
    * ``attacker_partition`` — ``rate``, ``heal_steps``, ``tier``
      (which tier the attacker is cut off from), ``start_step``;
    * ``loss_windows`` — ``windows``: explicit
      ``(start_step, drop_rate, duration_steps)`` triples, overlaps
      allowed (the injector nests them).
    """

    kind: str = "none"
    tier: str = "servers"
    start_step: float = 0.5
    rate: float = 0.25
    outage_probability: float = 0.3
    outage_steps: tuple[float, float] = (0.5, 2.0)
    period_steps: float = 3.0
    down_steps: float = 1.0
    heal_steps: tuple[float, float] = (1.0, 3.0)
    windows: tuple[tuple[float, float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.tier not in FAULT_TIERS:
            raise ConfigurationError(
                f"unknown fault tier {self.tier!r}; choose from {FAULT_TIERS}"
            )
        object.__setattr__(self, "outage_steps", tuple(self.outage_steps))
        object.__setattr__(self, "heal_steps", tuple(self.heal_steps))
        object.__setattr__(self, "windows", tuple(tuple(w) for w in self.windows))
        if self.kind == "loss_windows":
            if not self.windows:
                raise ConfigurationError(
                    "loss_windows needs at least one (start, rate, "
                    "duration) window"
                )
            for start, rate, duration in self.windows:
                if not 0.0 <= rate < 1.0:
                    raise ConfigurationError(f"loss rate must be in [0, 1), got {rate}")
                if start < 0 or duration <= 0:
                    raise ConfigurationError(
                        f"bad loss window ({start}, {rate}, {duration})"
                    )
        if self.kind == "rolling_outages" and (self.down_steps >= self.period_steps):
            raise ConfigurationError(
                "rolling outages must not overlap "
                f"(down {self.down_steps} >= period {self.period_steps})"
            )

    @property
    def active(self) -> bool:
        """Whether this plan injects anything at all."""
        return self.kind != "none"

    def as_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["outage_steps"] = list(self.outage_steps)
        data["heal_steps"] = list(self.heal_steps)
        data["windows"] = [list(w) for w in self.windows]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlanSpec":
        data = dict(data)
        if "outage_steps" in data:
            data["outage_steps"] = tuple(data["outage_steps"])
        if "heal_steps" in data:
            data["heal_steps"] = tuple(data["heal_steps"])
        if "windows" in data:
            data["windows"] = tuple(tuple(w) for w in data["windows"])
        return cls(**data)


@dataclass(frozen=True)
class WorkloadSpec:
    """Legitimate traffic offered to the deployment during the attack.

    ``open_loop`` installs Poisson-arrival
    :class:`~repro.workloads.openloop.OpenLoopClient` instances
    (``arrival_rate`` requests per step each); ``closed_loop`` installs
    the stock one-at-a-time
    :class:`~repro.core.clients.WorkloadClient` via
    :func:`~repro.core.builders.add_clients`.
    """

    kind: str = "none"
    clients: int = 1
    arrival_rate: float = 4.0
    request_timeout_steps: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; "
                f"choose from {WORKLOAD_KINDS}"
            )
        if self.clients < 1:
            raise ConfigurationError(f"clients must be >= 1, got {self.clients}")
        if self.arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival_rate must be positive, got {self.arrival_rate}"
            )
        if self.request_timeout_steps <= 0:
            raise ConfigurationError(
                "request_timeout_steps must be positive, got "
                f"{self.request_timeout_steps}"
            )

    @property
    def active(self) -> bool:
        """Whether this scenario serves any legitimate traffic."""
        return self.kind != "none"

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, campaign-runnable composition of the scenario space.

    The grid axes mirror :func:`~repro.core.campaign.campaign_grid`
    (κ collapses for non-S2 points there, so the grid never duplicates
    specs); ``timing`` names a :class:`~repro.core.timing.TimingSpec`
    preset; adversary, faults and workload compose the run itself.
    """

    name: str
    description: str
    systems: tuple[str, ...] = ("s2",)
    schemes: tuple[str, ...] = ("po", "so")
    alphas: tuple[float, ...] = (0.15,)
    kappas: tuple[float, ...] = (0.5,)
    entropy_bits: int = 8
    timing: str = "paper"
    adversary: AdversarySpec = AdversarySpec()
    faults: FaultPlanSpec = FaultPlanSpec()
    workload: WorkloadSpec = WorkloadSpec()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a non-empty name")
        object.__setattr__(self, "systems", tuple(self.systems))
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "alphas", tuple(self.alphas))
        object.__setattr__(self, "kappas", tuple(self.kappas))
        for system in self.systems:
            if system not in ("s0", "s1", "s2"):
                raise ConfigurationError(f"unknown system {system!r}")
        for scheme in self.schemes:
            if scheme not in ("po", "so"):
                raise ConfigurationError(f"unknown scheme {scheme!r}")
        if not (self.systems and self.schemes and self.alphas and self.kappas):
            raise ConfigurationError("scenario grid axes must be non-empty")
        if self.timing not in TimingSpec.PRESETS:
            raise ConfigurationError(
                f"unknown timing preset {self.timing!r}; "
                f"choose from {TimingSpec.PRESETS}"
            )
        # attacker_partition falls back to the server tier on proxy-less
        # systems; the crash/outage kinds hard-require proxies, so every
        # grid point must have some — fail here, not mid-campaign.
        if (
            self.faults.tier == "proxies"
            and self.faults.kind in ("crash_storm", "rolling_outages")
            and any(system != "s2" for system in self.systems)
        ):
            raise ConfigurationError(
                "a proxy-tier crash/outage plan needs an all-S2 grid "
                f"(got systems={self.systems})"
            )

    # ------------------------------------------------------------------
    def grid(self) -> list[SystemSpec]:
        """The scenario's :class:`SystemSpec` grid, in campaign order."""
        from ..core.campaign import campaign_grid
        from ..core.specs import SystemClass
        from ..randomization.obfuscation import Scheme

        return campaign_grid(
            systems=[SystemClass[s.upper()] for s in self.systems],
            schemes=[Scheme[s.upper()] for s in self.schemes],
            alphas=self.alphas,
            kappas=self.kappas,
            entropy_bits=self.entropy_bits,
        )

    def timing_spec(self) -> TimingSpec:
        """Resolve the named timing preset."""
        return TimingSpec.named(self.timing)

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """Copy with fields changed (grid overrides for benches/tests)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Dict / JSON round trip
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-ready plain-dict form (lists for tuples)."""
        return {
            "name": self.name,
            "description": self.description,
            "systems": list(self.systems),
            "schemes": list(self.schemes),
            "alphas": list(self.alphas),
            "kappas": list(self.kappas),
            "entropy_bits": self.entropy_bits,
            "timing": self.timing,
            "adversary": self.adversary.as_dict(),
            "faults": self.faults.as_dict(),
            "workload": self.workload.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Inverse of :meth:`as_dict` (bit-exact round trip)."""
        data = dict(data)
        for axis in ("systems", "schemes", "alphas", "kappas"):
            if axis in data:
                data[axis] = tuple(data[axis])
        if "adversary" in data:
            data["adversary"] = AdversarySpec.from_dict(data["adversary"])
        if "faults" in data:
            data["faults"] = FaultPlanSpec.from_dict(data["faults"])
        if "workload" in data:
            data["workload"] = WorkloadSpec.from_dict(data["workload"])
        return cls(**data)
