"""Scenario interpretation: from declarative spec to running deployment.

:func:`deploy_scenario` is the one entry point: it builds the system for
one grid point, mounts the scenario's adversary, generates and schedules
the seeded fault plan, installs the workload, and decides whether the
epoch fast-forward may arm.  The result is a ready-to-start
:class:`~repro.core.builders.DeployedSystem`;
:func:`repro.core.experiment.run_protocol_lifetime` drives it exactly
like a plain deployment, so every executor guarantee (worker/batch
invariance, pool-breakage resilience, precision mode) applies to
scenario campaigns unchanged.

Determinism: the fault plan is generated from the deployment's own
seeded RNG registry (stream ``"scenario:faults"``), workload clients
get fixed names (their streams derive from the name), and the adversary
strategies share the stock attacker's guess-buffer discipline — one
root seed fixes the entire composition.
"""

from __future__ import annotations

import random
from typing import Optional

from ..attacker.agent import AttackerProcess
from ..core.builders import DeployedSystem, add_clients, attach_attacker, build_system
from ..core.specs import SystemClass, SystemSpec
from ..core.timing import TimingSpec
from ..errors import ConfigurationError
from ..faults.injector import FaultEvent, FaultInjector, MessageLossFault
from ..faults.plans import crash_storm, partition_schedule
from ..faults.plans import rolling_outages as rolling_outage_plan
from ..workloads.openloop import OpenLoopClient
from .spec import AdversarySpec, FaultPlanSpec, ScenarioSpec, WorkloadSpec


def mount_adversary(
    deployed: DeployedSystem, adversary: AdversarySpec
) -> AttackerProcess:
    """Attach the scenario's adversary to a deployment.

    All three kinds reuse the §4 campaign *wiring* of
    :func:`~repro.core.builders.attach_attacker` (which streams attack
    which tier, pool sharing, launch pad) and vary only how a direct
    stream is driven — so scheme/system semantics stay single-sourced.
    """
    if adversary.kind == "paper":
        return attach_attacker(deployed)
    if adversary.kind == "stealth":

        def direct(attacker, target, pool_id=None):
            return attacker.attack_direct_duty_cycled(
                target,
                on_fraction=adversary.duty_fraction,
                cycle_periods=adversary.cycle_periods,
                pool_id=pool_id,
            )

        return attach_attacker(deployed, direct=direct)
    if adversary.kind == "coordinated":

        def direct(attacker, target, pool_id=None):
            return attacker.attack_direct_coordinated(
                target, agents=adversary.agents, pool_id=pool_id
            )

        return attach_attacker(
            deployed, direct=direct, indirect_identities=adversary.agents
        )
    raise ConfigurationError(
        f"unknown adversary kind {adversary.kind!r}"
    )  # pragma: no cover - AdversarySpec validates


def _fault_targets(
    deployed: DeployedSystem, tier: str, fallback: bool = False
) -> list[str]:
    if tier == "servers":
        return deployed.server_names
    if tier == "proxies":
        if deployed.proxies:
            return deployed.proxy_names
        if fallback:
            return deployed.server_names
        raise ConfigurationError(
            f"{deployed.spec.label} has no proxy tier to inject faults into"
        )
    return deployed.server_names + deployed.proxy_names


def build_fault_plan(
    faults: FaultPlanSpec,
    deployed: DeployedSystem,
    horizon: float,
    rng: Optional[random.Random] = None,
) -> list[FaultEvent]:
    """Generate the concrete fault plan for one deployment and horizon.

    Stochastic plans draw from the deployment's seeded
    ``"scenario:faults"`` stream, so the plan is a pure function of the
    run's root seed — worker and batch invariant by construction.
    """
    if not faults.active:
        return []
    period = deployed.spec.period
    if rng is None:
        rng = deployed.sim.rng.stream("scenario:faults")
    start = faults.start_step * period
    if faults.kind == "crash_storm":
        return crash_storm(
            rng,
            _fault_targets(deployed, faults.tier),
            horizon=horizon,
            rate=faults.rate / period,
            outage_probability=faults.outage_probability,
            outage_range=(
                faults.outage_steps[0] * period,
                faults.outage_steps[1] * period,
            ),
            start=start,
        )
    if faults.kind == "rolling_outages":
        step = faults.period_steps * period
        rounds = int((horizon - start) / step)
        if rounds < 1:
            return []
        return rolling_outage_plan(
            _fault_targets(deployed, faults.tier),
            period=step,
            down_for=faults.down_steps * period,
            rounds=rounds,
            start=start,
        )
    if faults.kind == "attacker_partition":
        attacker = deployed.attacker
        if attacker is None:
            raise ConfigurationError(
                "attacker_partition plans need the adversary mounted first"
            )
        # Cut the attacker off from his direct-probe targets (the proxy
        # tier when one exists, the server tier otherwise).  Every
        # attacker endpoint is a candidate cut: a coordinated adversary
        # probes from its agent machines, not the orchestrator.
        targets = _fault_targets(deployed, faults.tier, fallback=True)
        return partition_schedule(
            rng,
            [
                (endpoint, target)
                for target in targets
                for endpoint in attacker.endpoint_names
            ],
            horizon=horizon,
            rate=faults.rate / period,
            heal_range=(
                faults.heal_steps[0] * period,
                faults.heal_steps[1] * period,
            ),
            start=start,
        )
    # loss_windows: explicit, possibly overlapping; windows starting at
    # or past the horizon are dropped (short-budget runs of a scenario
    # declared for a longer one), tails past the horizon are harmless.
    plan = [
        MessageLossFault(
            time=start_step * period,
            rate=rate,
            duration=duration_steps * period,
        )
        for start_step, rate, duration_steps in faults.windows
        if start_step * period < horizon
    ]
    plan.sort(key=lambda fault: fault.time)
    return plan


def install_workload(deployed: DeployedSystem, workload: WorkloadSpec) -> list:
    """Install the scenario's client population (not yet started).

    Clients are appended to ``deployed.clients``, so
    :meth:`~repro.core.builders.DeployedSystem.start` starts them with
    the rest of the deployment.  Open-loop clients get fixed names —
    their RNG streams derive from the name, and a session-global
    counter would break run-to-run determinism.
    """
    if not workload.active:
        return []
    if workload.kind == "closed_loop":
        return add_clients(deployed, count=workload.clients)
    spec = deployed.spec
    mode = {
        SystemClass.S0: "smr",
        SystemClass.S1: "pb",
        SystemClass.S2: "fortress",
    }[spec.system]
    targets = (
        deployed.proxy_names
        if spec.system is SystemClass.S2
        else deployed.server_names
    )
    clients = []
    for i in range(workload.clients):
        client = OpenLoopClient(
            deployed.sim,
            deployed.network,
            deployed.authority,
            mode=mode,
            targets=targets,
            arrival_rate=workload.arrival_rate / spec.period,
            request_timeout=workload.request_timeout_steps * spec.period,
            f=spec.f,
            name=f"openloop-{i}",
        )
        deployed.network.register(client)
        deployed.clients.append(client)
        clients.append(client)
    return clients


def deploy_scenario(
    spec: SystemSpec,
    scenario: ScenarioSpec,
    seed: int = 0,
    max_steps: int = 500,
    timing: Optional[TimingSpec] = None,
    **build_kwargs,
) -> DeployedSystem:
    """Build one grid point of ``scenario``, fully composed, not started.

    The epoch fast-forward **refuses to arm** whenever the scenario has
    injector events or workload traffic in play: a stopped-early run
    would skip pending fault applies/expiries and in-flight client
    requests, and "the attack is provably dead" no longer implies "the
    remaining timeline is inert".  Pure-attack scenarios keep the
    fast-forward (and its censored-run speedup) unchanged.
    """
    if timing is None:
        timing = scenario.timing_spec()
    deployed = build_system(spec, seed=seed, timing=timing, **build_kwargs)
    attacker = mount_adversary(deployed, scenario.adversary)
    horizon = max_steps * spec.period
    plan = build_fault_plan(scenario.faults, deployed, horizon)
    if plan:
        injector = FaultInjector(deployed.sim, deployed.network)
        injector.schedule_plan(plan, horizon=horizon)
        deployed.injector = injector
    install_workload(deployed, scenario.workload)
    if not plan and not scenario.workload.active:
        attacker.enable_fast_forward()
    return deployed
