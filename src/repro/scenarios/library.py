"""The built-in scenario library.

Nine named compositions spanning the scenario space the paper never
ran: benign-fault torture, degraded infrastructure, network pathology
and non-paper adversaries — all at laptop scale (χ = 2⁸, α = 0.15) so a
full campaign of any scenario runs in seconds and the protocol, MC and
analytic layers stay comparable.

Every scenario here is reachable as ``python -m repro scenario run
<name>`` and appears as a column of the survivability matrix in
``benchmarks/bench_scenarios.py``.
"""

from __future__ import annotations

from .registry import register_scenario
from .spec import AdversarySpec, FaultPlanSpec, ScenarioSpec, WorkloadSpec


@register_scenario
def paper_baseline() -> ScenarioSpec:
    """The paper's own threat model, as a named scenario."""
    return ScenarioSpec(
        name="paper-baseline",
        description=(
            "The paper's §4 attack campaign on all three system classes "
            "under both schemes — no faults, no workload, paper timing."
        ),
        systems=("s0", "s1", "s2"),
        schemes=("po", "so"),
    )


@register_scenario
def crash_storm_under_attack() -> ScenarioSpec:
    """Benign crashes and machine outages land *while* the probes fly."""
    return ScenarioSpec(
        name="crash-storm-under-attack",
        description=(
            "Poisson crash storm over the server tier (30% outages of "
            "0.5-2 steps) concurrent with the paper's attack campaign."
        ),
        systems=("s1", "s2"),
        schemes=("so",),
        faults=FaultPlanSpec(
            kind="crash_storm",
            tier="servers",
            rate=0.4,
            outage_probability=0.3,
            outage_steps=(0.5, 2.0),
        ),
    )


@register_scenario
def rolling_outages() -> ScenarioSpec:
    """One server down at a time, round-robin, under live traffic."""
    return ScenarioSpec(
        name="rolling-outages",
        description=(
            "Round-robin single-node outages over the PB tier (1 step "
            "down every 3) with an open-loop client measuring service "
            "availability while the attack runs."
        ),
        systems=("s1",),
        schemes=("po", "so"),
        faults=FaultPlanSpec(
            kind="rolling_outages",
            tier="servers",
            period_steps=3.0,
            down_steps=1.0,
        ),
        workload=WorkloadSpec(kind="open_loop", arrival_rate=4.0),
    )


@register_scenario
def partitioned_attacker() -> ScenarioSpec:
    """The network fights back: attacker links flap."""
    return ScenarioSpec(
        name="partitioned-attacker",
        description=(
            "Random temporary partitions between the attacker and the "
            "proxy tier (healing in 1-3 steps): probe connections drop "
            "at reconnect time and indirect datagrams are cut."
        ),
        systems=("s2",),
        schemes=("po", "so"),
        faults=FaultPlanSpec(
            kind="attacker_partition",
            tier="proxies",
            rate=0.25,
            heal_steps=(1.0, 3.0),
        ),
    )


@register_scenario
def lossy_wan() -> ScenarioSpec:
    """Overlapping message-loss windows degrade everyone's traffic."""
    return ScenarioSpec(
        name="lossy-wan",
        description=(
            "Three overlapping drop-rate windows (up to 60% loss) hit "
            "protocol traffic and indirect probes alike — the overlap "
            "exercises the injector's nested-window restore semantics."
        ),
        systems=("s2",),
        schemes=("so",),
        faults=FaultPlanSpec(
            kind="loss_windows",
            windows=((4.0, 0.3, 15.0), (10.0, 0.6, 5.0), (20.0, 0.15, 12.0)),
        ),
    )


@register_scenario
def degraded_timing() -> ScenarioSpec:
    """Slow infrastructure: the `degraded` TimingSpec as a scenario."""
    return ScenarioSpec(
        name="degraded-timing",
        description=(
            "Sluggish daemons, WAN latency, staggered refreshes and a "
            "slow detection pipeline (TimingSpec.degraded) under the "
            "stock attack."
        ),
        systems=("s2",),
        schemes=("po", "so"),
        timing="degraded",
    )


@register_scenario
def stealth_prober() -> ScenarioSpec:
    """A duty-cycled attacker that probes in bursts."""
    return ScenarioSpec(
        name="stealth-prober",
        description=(
            "Direct probing runs at full rate for half of every 2-step "
            "cycle and goes silent in between — burst structure that "
            "sustained-rate detection thresholds cannot see."
        ),
        systems=("s2",),
        schemes=("so",),
        adversary=AdversarySpec(kind="stealth", duty_fraction=0.5, cycle_periods=2.0),
    )


@register_scenario
def coordinated_attacker() -> ScenarioSpec:
    """Three cooperating attacker machines share one campaign."""
    return ScenarioSpec(
        name="coordinated-attacker",
        description=(
            "Direct probing split across three agent machines (shared "
            "key pools, interleaved pacing) and indirect probing "
            "rotating three spoofed identities — per-source analysis "
            "sees a third of the truth."
        ),
        systems=("s2",),
        schemes=("po", "so"),
        adversary=AdversarySpec(kind="coordinated", agents=3),
    )


@register_scenario
def combined_stress() -> ScenarioSpec:
    """Everything at once: the closest thing to a production bad day."""
    return ScenarioSpec(
        name="combined-stress",
        description=(
            "Stealth probing, a server-tier crash storm, open-loop "
            "client traffic and degraded timing, all concurrently — "
            "the composition stress test of the scenario subsystem."
        ),
        systems=("s2",),
        schemes=("so",),
        timing="degraded",
        adversary=AdversarySpec(kind="stealth", duty_fraction=0.5, cycle_periods=2.0),
        faults=FaultPlanSpec(
            kind="crash_storm",
            tier="servers",
            rate=0.3,
            outage_probability=0.25,
            outage_steps=(0.5, 1.5),
        ),
        workload=WorkloadSpec(kind="open_loop", arrival_rate=2.0),
    )
