"""repro — reproduction of "Assessing the Attack Resilience Capabilities
of a Fortified Primary-Backup System" (Clarke & Ezhilchelvan, DSN 2010).

The library evaluates the attack resilience of three replicated-server
system classes — S0 (4-replica SMR), S1 (primary-backup) and S2
(FORTRESS: a proxy-fortified primary-backup system) — under proactive
obfuscation (PO) and start-up-only randomization with proactive recovery
(SO), against de-randomization attackers.

Three evaluation methods share one parameter vocabulary
(α, κ, χ, ω — see :class:`repro.core.SystemSpec`):

* analytic models — :mod:`repro.analysis` (closed forms + absorbing
  Markov chains);
* fast Monte-Carlo — :mod:`repro.mc`;
* full protocol-level simulation — :mod:`repro.core` on top of the
  :mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.crypto`,
  :mod:`repro.randomization`, :mod:`repro.replication`,
  :mod:`repro.proxy` and :mod:`repro.attacker` substrates.

Quickstart
----------
>>> from repro import s2, Scheme, expected_lifetime, mc_expected_lifetime
>>> spec = s2(Scheme.PO, alpha=1e-3, kappa=0.5)
>>> analytic = expected_lifetime(spec)
>>> mc = mc_expected_lifetime(spec, trials=20_000)
>>> mc.within_ci(analytic)
True
"""

from .analysis import (
    AbsorbingMarkovChain,
    el_s2_po_with_period,
    expected_lifetime,
    kappa_crossover_s2_vs_s0,
    kappa_crossover_s2_vs_s1,
    lifetimes_at,
    verify_paper_trends,
)
from .core import (
    DeployedSystem,
    SystemClass,
    SystemSpec,
    TimingSpec,
    add_clients,
    attach_attacker,
    build_system,
    estimate_protocol_lifetime,
    paper_systems,
    run_protocol_lifetime,
    s0,
    s1,
    s2,
)
from .mc import (
    figure1_series,
    figure2_series,
    mc_expected_lifetime,
    model_for,
    sweep_alpha,
    sweep_kappa,
)
from .proxy import DetectionPolicy, kappa_for_policy
from .randomization import KeySpace, Scheme
from .reporting import render_series_table, render_table

__version__ = "1.0.0"

__all__ = [
    "AbsorbingMarkovChain",
    "el_s2_po_with_period",
    "expected_lifetime",
    "kappa_crossover_s2_vs_s0",
    "kappa_crossover_s2_vs_s1",
    "lifetimes_at",
    "verify_paper_trends",
    "DeployedSystem",
    "SystemClass",
    "SystemSpec",
    "TimingSpec",
    "add_clients",
    "attach_attacker",
    "build_system",
    "estimate_protocol_lifetime",
    "paper_systems",
    "run_protocol_lifetime",
    "s0",
    "s1",
    "s2",
    "figure1_series",
    "figure2_series",
    "mc_expected_lifetime",
    "model_for",
    "sweep_alpha",
    "sweep_kappa",
    "DetectionPolicy",
    "kappa_for_policy",
    "KeySpace",
    "Scheme",
    "render_series_table",
    "render_table",
    "__version__",
]
