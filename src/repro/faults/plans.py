"""Reproducible fault-plan generators.

Plans are ordinary lists of fault events generated from a seeded RNG, so
an interesting failure run can always be replayed.  Generators cover the
classic distributed-systems torture patterns:

* :func:`crash_storm` — Poisson-ish crashes across the target set, some
  transient (daemon respawn), some outages;
* :func:`rolling_outages` — one node at a time down, round-robin (the
  worst benign pattern for a primary-backup tier);
* :func:`partition_schedule` — repeated temporary link cuts;
* :func:`lossy_window` — a period of heavy message loss.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..errors import ConfigurationError
from .injector import CrashFault, FaultEvent, MessageLossFault, PartitionFault


def crash_storm(
    rng: random.Random,
    targets: Sequence[str],
    horizon: float,
    rate: float = 0.5,
    outage_probability: float = 0.3,
    outage_range: tuple[float, float] = (0.2, 1.0),
    start: float = 0.5,
) -> list[FaultEvent]:
    """Random crashes over ``targets`` at roughly ``rate`` per time unit."""
    if not targets:
        raise ConfigurationError("crash storm needs at least one target")
    if rate <= 0 or horizon <= start:
        raise ConfigurationError("need positive rate and horizon > start")
    plan: list[FaultEvent] = []
    t = start
    while True:
        t += rng.expovariate(rate)
        if t >= horizon:
            break
        down_for = None
        if rng.random() < outage_probability:
            down_for = rng.uniform(*outage_range)
        plan.append(
            CrashFault(time=t, target=rng.choice(list(targets)), down_for=down_for)
        )
    return plan


def rolling_outages(
    targets: Sequence[str],
    period: float,
    down_for: float,
    rounds: int,
    start: float = 0.5,
) -> list[FaultEvent]:
    """Take each target down in turn, ``down_for`` per outage.

    ``down_for`` must be shorter than ``period`` so outages never
    overlap — at most one node is ever down, which a crash-tolerant tier
    must survive indefinitely.
    """
    if down_for >= period:
        raise ConfigurationError("outages must not overlap (down_for < period)")
    plan: list[FaultEvent] = []
    for i in range(rounds):
        target = targets[i % len(targets)]
        plan.append(
            CrashFault(time=start + i * period, target=target, down_for=down_for)
        )
    return plan


def partition_schedule(
    rng: random.Random,
    pairs: Sequence[tuple[str, str]],
    horizon: float,
    rate: float = 0.3,
    heal_range: tuple[float, float] = (0.2, 0.8),
    start: float = 0.5,
) -> list[FaultEvent]:
    """Random temporary partitions among ``pairs``."""
    if not pairs:
        raise ConfigurationError("partition schedule needs at least one pair")
    plan: list[FaultEvent] = []
    t = start
    while True:
        t += rng.expovariate(rate)
        if t >= horizon:
            break
        a, b = rng.choice(list(pairs))
        plan.append(
            PartitionFault(time=t, a=a, b=b, heal_after=rng.uniform(*heal_range))
        )
    return plan


def lossy_window(time: float, rate: float, duration: float) -> list[FaultEvent]:
    """A single window of message loss."""
    return [MessageLossFault(time=time, rate=rate, duration=duration)]
