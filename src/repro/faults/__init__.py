"""Fault injection: timed crash/partition/loss plans for torture tests."""

from .injector import (
    CrashFault,
    FaultEvent,
    FaultInjector,
    MessageLossFault,
    PartitionFault,
)
from .plans import crash_storm, lossy_window, partition_schedule, rolling_outages

__all__ = [
    "CrashFault",
    "FaultEvent",
    "FaultInjector",
    "MessageLossFault",
    "PartitionFault",
    "crash_storm",
    "lossy_window",
    "partition_schedule",
    "rolling_outages",
]
