"""Deterministic fault injection for protocol-level experiments.

The replication substrates claim crash tolerance (PB) and intrusion
tolerance (SMR); fault injection is how the test suite *earns* those
claims.  A :class:`FaultInjector` executes a plan of timed fault events
against a running deployment:

* :class:`CrashFault` — crash a process; either the forking daemon
  restores it (transient crash) or it stays down for ``down_for``
  simulated time (an outage);
* :class:`PartitionFault` — cut the link between two processes, healing
  after ``heal_after``;
* :class:`MessageLossFault` — raise the network's drop rate for a
  window, then restore it.

Plans are plain lists of events, so they can be hand-written in tests or
generated reproducibly by :mod:`repro.faults.plans`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..net.network import Network
from ..sim.engine import Simulator


@dataclass(frozen=True)
class CrashFault:
    """Crash ``target`` at ``time``.

    With ``down_for`` unset the forking daemon respawns the process as
    usual; with it set the daemon is suppressed and the process stays
    down for that long (a machine outage).
    """

    time: float
    target: str
    down_for: Optional[float] = None


@dataclass(frozen=True)
class PartitionFault:
    """Partition ``a`` from ``b`` at ``time``; heal after ``heal_after``."""

    time: float
    a: str
    b: str
    heal_after: float


@dataclass(frozen=True)
class MessageLossFault:
    """Set the network drop rate to ``rate`` for ``duration``."""

    time: float
    rate: float
    duration: float


FaultEvent = CrashFault | PartitionFault | MessageLossFault


class FaultInjector:
    """Schedules and applies a fault plan against a deployment.

    Parameters
    ----------
    sim, network:
        The simulation substrates of the deployment under test.
    """

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.applied: list[tuple[float, FaultEvent]] = []

    # ------------------------------------------------------------------
    def schedule_plan(self, plan: list[FaultEvent]) -> None:
        """Schedule every event of ``plan`` (times are absolute)."""
        for fault in plan:
            self.schedule(fault)

    def schedule(self, fault: FaultEvent) -> None:
        """Schedule one fault event."""
        if fault.time < self.sim.now:
            raise ConfigurationError(
                f"fault at t={fault.time} is in the past (now={self.sim.now})"
            )
        self.sim.schedule_at(fault.time, self._apply, fault)

    # ------------------------------------------------------------------
    def _apply(self, fault: FaultEvent) -> None:
        self.applied.append((self.sim.now, fault))
        if isinstance(fault, CrashFault):
            self._apply_crash(fault)
        elif isinstance(fault, PartitionFault):
            self._apply_partition(fault)
        else:
            self._apply_loss(fault)

    def _apply_crash(self, fault: CrashFault) -> None:
        target = self.network.process(fault.target)
        if fault.down_for is None:
            target.crash()
            return
        target.begin_outage()
        self.sim.schedule(fault.down_for, target.end_outage)

    def _apply_partition(self, fault: PartitionFault) -> None:
        self.network.partition(fault.a, fault.b)
        self.sim.schedule(fault.heal_after, self.network.heal, fault.a, fault.b)

    def _apply_loss(self, fault: MessageLossFault) -> None:
        if not 0.0 <= fault.rate < 1.0:
            raise ConfigurationError(f"loss rate must be in [0, 1), got {fault.rate}")
        saved_rate = self.network.drop_rate
        self.network.drop_rate = fault.rate

        def restore() -> None:
            self.network.drop_rate = saved_rate

        self.sim.schedule(fault.duration, restore)
