"""Deterministic fault injection for protocol-level experiments.

The replication substrates claim crash tolerance (PB) and intrusion
tolerance (SMR); fault injection is how the test suite *earns* those
claims.  A :class:`FaultInjector` executes a plan of timed fault events
against a running deployment:

* :class:`CrashFault` — crash a process; either the forking daemon
  restores it (transient crash) or it stays down for ``down_for``
  simulated time (an outage);
* :class:`PartitionFault` — cut the link between two processes, healing
  after ``heal_after``;
* :class:`MessageLossFault` — raise the network's drop rate for a
  window, then restore it.

Plans are plain lists of events, so they can be hand-written in tests or
generated reproducibly by :mod:`repro.faults.plans`.

Overlap semantics (scenario plans compose freely, so overlaps are
legal, not operator error):

* overlapping **loss windows** nest: while any window is open the most
  recently applied rate is in force, and each window's expiry
  re-instates the next most recent still-open window (or the baseline
  rate once the last one closes) — a restore never clobbers the rate
  under a window that outlives it;
* overlapping **outages** on one target extend each other: the machine
  stays down until the *last* overlapping outage ends, and only that
  final end restores the forking daemon;
* overlapping **partitions** of one pair likewise: the link stays cut
  until the last overlapping window heals.

Fault applies and expiries are fire-and-forget — nothing ever cancels
them — so they ride the kernel's no-handle
:meth:`~repro.sim.engine.Simulator.schedule_fast` path, and plans are
validated up front at :meth:`FaultInjector.schedule_plan` time (sorted,
inside the horizon, rates in range) instead of failing mid-run with the
simulation half-executed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..net.network import Network
from ..sim.engine import Simulator


@dataclass(frozen=True)
class CrashFault:
    """Crash ``target`` at ``time``.

    With ``down_for`` unset the forking daemon respawns the process as
    usual; with it set the daemon is suppressed and the process stays
    down for that long (a machine outage).
    """

    time: float
    target: str
    down_for: Optional[float] = None


@dataclass(frozen=True)
class PartitionFault:
    """Partition ``a`` from ``b`` at ``time``; heal after ``heal_after``."""

    time: float
    a: str
    b: str
    heal_after: float


@dataclass(frozen=True)
class MessageLossFault:
    """Set the network drop rate to ``rate`` for ``duration``."""

    time: float
    rate: float
    duration: float


FaultEvent = CrashFault | PartitionFault | MessageLossFault


def validate_plan(
    plan: list[FaultEvent],
    now: float = 0.0,
    horizon: Optional[float] = None,
) -> None:
    """Validate a whole plan before anything is scheduled.

    Checks that events are sorted by time, none is in the past, every
    event starts before ``horizon`` (when given), and per-event
    parameters are in range — so a bad plan fails at configuration time
    instead of aborting a half-executed simulation.
    """
    previous = None
    for fault in plan:
        if fault.time < now:
            raise ConfigurationError(
                f"fault at t={fault.time} is in the past (now={now})"
            )
        if previous is not None and fault.time < previous:
            raise ConfigurationError(
                f"fault plan is not sorted: t={fault.time} follows t={previous}"
            )
        if horizon is not None and fault.time >= horizon:
            raise ConfigurationError(
                f"fault at t={fault.time} starts at or beyond the horizon "
                f"({horizon})"
            )
        previous = fault.time
        _validate_event(fault)


def _validate_event(fault: FaultEvent) -> None:
    if isinstance(fault, MessageLossFault):
        if not 0.0 <= fault.rate < 1.0:
            raise ConfigurationError(f"loss rate must be in [0, 1), got {fault.rate}")
        if fault.duration <= 0:
            raise ConfigurationError(
                f"loss duration must be positive, got {fault.duration}"
            )
    elif isinstance(fault, CrashFault):
        if fault.down_for is not None and fault.down_for <= 0:
            raise ConfigurationError(
                f"outage down_for must be positive, got {fault.down_for}"
            )
    elif isinstance(fault, PartitionFault):
        if fault.heal_after <= 0:
            raise ConfigurationError(
                f"heal_after must be positive, got {fault.heal_after}"
            )


class FaultInjector:
    """Schedules and applies a fault plan against a deployment.

    Parameters
    ----------
    sim, network:
        The simulation substrates of the deployment under test.
    """

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.applied: list[tuple[float, FaultEvent]] = []
        # Open loss windows, most recent last: (token, rate).  The
        # baseline drop rate is captured when the first window opens.
        self._loss_windows: list[tuple[int, float]] = []
        self._loss_tokens = itertools.count()
        self._baseline_drop_rate = 0.0
        # Active-outage refcount per target: overlapping outages extend
        # each other, and only the last end powers the machine back on.
        self._outages: dict[str, int] = {}
        # Active-partition refcount per pair: Network.partition/heal are
        # idempotent set operations, so overlapping windows on one pair
        # need the same discipline (only the last heal reconnects).
        self._partitions: dict[frozenset[str], int] = {}

    # ------------------------------------------------------------------
    def schedule_plan(
        self, plan: list[FaultEvent], horizon: Optional[float] = None
    ) -> None:
        """Validate and schedule every event of ``plan`` (absolute times).

        The whole plan is validated first (:func:`validate_plan`): an
        unsorted, out-of-horizon or out-of-range plan raises before any
        event is scheduled.
        """
        validate_plan(plan, now=self.sim.now, horizon=horizon)
        for fault in plan:
            self.sim.schedule_at(fault.time, self._apply, fault)

    def schedule(self, fault: FaultEvent) -> None:
        """Validate and schedule one fault event."""
        if fault.time < self.sim.now:
            raise ConfigurationError(
                f"fault at t={fault.time} is in the past (now={self.sim.now})"
            )
        _validate_event(fault)
        self.sim.schedule_at(fault.time, self._apply, fault)

    # ------------------------------------------------------------------
    def _apply(self, fault: FaultEvent) -> None:
        self.applied.append((self.sim.now, fault))
        if isinstance(fault, CrashFault):
            self._apply_crash(fault)
        elif isinstance(fault, PartitionFault):
            self._apply_partition(fault)
        else:
            self._apply_loss(fault)

    # -- crashes / outages ----------------------------------------------
    def _apply_crash(self, fault: CrashFault) -> None:
        target = self.network.process(fault.target)
        if fault.down_for is None:
            target.crash()
            return
        active = self._outages.get(fault.target, 0)
        self._outages[fault.target] = active + 1
        if active == 0:
            target.begin_outage()
        # Expiries never cancel: fire-and-forget on the fast path.
        self.sim.schedule_fast(fault.down_for, self._end_outage, fault.target)

    def _end_outage(self, name: str) -> None:
        """One overlapping outage ended; power on only when all have."""
        remaining = self._outages.get(name, 0) - 1
        if remaining > 0:
            self._outages[name] = remaining
            return
        self._outages.pop(name, None)
        self.network.process(name).end_outage()

    # -- partitions ------------------------------------------------------
    def _apply_partition(self, fault: PartitionFault) -> None:
        pair = frozenset((fault.a, fault.b))
        active = self._partitions.get(pair, 0)
        self._partitions[pair] = active + 1
        if active == 0:
            self.network.partition(fault.a, fault.b)
        self.sim.schedule_fast(fault.heal_after, self._heal, fault.a, fault.b)

    def _heal(self, a: str, b: str) -> None:
        """One overlapping partition window healed; reconnect only when
        all windows on the pair have."""
        pair = frozenset((a, b))
        remaining = self._partitions.get(pair, 0) - 1
        if remaining > 0:
            self._partitions[pair] = remaining
            return
        self._partitions.pop(pair, None)
        self.network.heal(a, b)

    # -- message loss ----------------------------------------------------
    def _apply_loss(self, fault: MessageLossFault) -> None:
        if not self._loss_windows:
            self._baseline_drop_rate = self.network.drop_rate
        token = next(self._loss_tokens)
        self._loss_windows.append((token, fault.rate))
        self.network.drop_rate = fault.rate
        self.sim.schedule_fast(fault.duration, self._restore_loss, token)

    def _restore_loss(self, token: int) -> None:
        """Close one loss window and re-instate whatever is underneath.

        Each expiry removes *its own* window (matched by token, so
        overlapping windows cannot close each other) and then applies
        the most recent still-open window's rate — or the baseline once
        the last window has closed.  A restore closure capturing the
        drop rate seen at apply time would instead re-instate a stale
        rate in the middle of any window that outlives it.
        """
        windows = self._loss_windows
        for i, (open_token, _) in enumerate(windows):
            if open_token == token:
                del windows[i]
                break
        else:  # pragma: no cover - expiries are scheduled exactly once
            return
        if windows:
            self.network.drop_rate = windows[-1][1]
        else:
            self.network.drop_rate = self._baseline_drop_rate

    # ------------------------------------------------------------------
    @property
    def pending_outages(self) -> int:
        """Targets currently held down by an injector outage."""
        return len(self._outages)

    @property
    def open_loss_windows(self) -> int:
        """Loss windows currently in force."""
        return len(self._loss_windows)
