"""Fault-tolerant supervision around any :class:`ExecutorBackend`.

:class:`SupervisedBackend` wraps an inner backend and turns its
all-or-nothing task rounds into a supervised event loop:

* per-task **wall-clock timeouts** (hung workers are detected by future
  deadlines, abandoned, and the task re-dispatched);
* bounded **retry with exponential backoff** whose jitter derives from
  the task's own seed — recovery schedules are a pure function of the
  campaign seeds, so supervised runs under injected faults fold to
  bit-identical estimates;
* **poison-task quarantine**: a task that fails
  :attr:`~repro.supervision.SupervisionPolicy.max_attempts` times is
  recorded as a typed :class:`~repro.supervision.TaskFailure` in the
  failure manifest and its result slot filled with
  :class:`~repro.supervision.Quarantined` — the campaign keeps going;
* transport-failure absorption: pool startup refusals and broken pools
  are retried through :meth:`ExecutorBackend.recycle` up to
  ``transport_strikes`` times, then the remaining tasks drain
  synchronously in-process (the last rung of the degradation ladder).

The supervised contract therefore *differs* from the raw backend
contract in one deliberate way: task-level exceptions no longer
propagate — they are retried and, ultimately, quarantined.  Callers that
need fail-fast semantics should not supervise.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

from ..log import get_logger
from ..mc.executor import ExecutorBackend
from .policy import (
    FailureManifest,
    Quarantined,
    SupervisionPolicy,
    TaskFailure,
    describe_task,
    retry_delay,
    task_seed_of,
)

#: Transport-level exception types (never charged against a task).
_TRANSPORT_ERRORS = (OSError, PermissionError, BrokenProcessPool)

#: Operational narration (transport strikes, degradations) goes to the
#: logger; caller-facing contract warnings (quarantine, ignored
#: timeouts) stay ``warnings.warn`` — see :mod:`repro.log`.
logger = get_logger(__name__)


class SupervisedBackend(ExecutorBackend):
    """Retries, timeouts and quarantine wrapped around ``inner``.

    One instance (and its :class:`~repro.supervision.FailureManifest`)
    spans a whole campaign: the manifest accumulates across ``map``
    rounds, so the campaign result can report total retries/timeouts and
    every quarantined task.

    When ``inner`` supports asynchronous dispatch
    (:attr:`ExecutorBackend.supports_submit`), the full supervision loop
    runs — timeouts included.  Synchronous inners (the serial backend)
    get retry + quarantine only; a task running in-process cannot be
    interrupted, so ``task_timeout`` is ignored there with a warning.
    """

    def __init__(
        self,
        inner: ExecutorBackend,
        policy: SupervisionPolicy | None = None,
        manifest: FailureManifest | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.manifest = manifest if manifest is not None else FailureManifest()
        self._warned_sync_timeout = False

    def open(self) -> None:
        self.inner.open()

    def close(self) -> None:
        self.inner.close()

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable,
        tasks: list,
        on_result: Callable[[int, object], None] | None = None,
    ) -> list:
        tasks = list(tasks)
        if not tasks:
            return []
        if self.inner.supports_submit:
            return self._map_async(fn, tasks, on_result)
        return self._map_sync(fn, tasks, on_result)

    # ------------------------------------------------------------------
    def _quarantine(self, index: int, task, attempts: int, kind: str, error):
        failure = TaskFailure(
            index=index,
            label=describe_task(task),
            seeds=tuple(getattr(task, "seeds", ()) or ()),
            attempts=attempts,
            kind=kind,
            error=f"{type(error).__name__}: {error}",
        )
        self.manifest.record(failure)
        warnings.warn(
            f"task {index} ({failure.label}) quarantined after "
            f"{attempts} attempts ({failure.error}); campaign continues "
            "without it — see the failure manifest",
            RuntimeWarning,
            stacklevel=4,
        )
        return Quarantined(failure)

    def _map_sync(self, fn, tasks, on_result):
        """Retry + quarantine without timeouts (synchronous inner)."""
        if self.policy.task_timeout is not None and not self._warned_sync_timeout:
            warnings.warn(
                f"{type(self.inner).__name__} runs tasks synchronously; "
                "task_timeout cannot interrupt them and is ignored",
                RuntimeWarning,
                stacklevel=3,
            )
            self._warned_sync_timeout = True
        results = []
        for index, task in enumerate(tasks):
            attempts = 0
            while True:
                try:
                    result = fn(task)
                except Exception as exc:
                    attempts += 1
                    if attempts >= self.policy.max_attempts:
                        results.append(self._quarantine(
                            index, task, attempts, "error", exc
                        ))
                        break
                    self.manifest.retries += 1
                    time.sleep(
                        retry_delay(
                            self.policy, attempts, task_seed_of(task, index)
                        )
                    )
                    continue
                results.append(result)
                if on_result is not None:
                    on_result(index, result)
                break
        return results

    def _map_async(self, fn, tasks, on_result):
        """The full supervision loop over an async-capable inner."""
        policy = self.policy
        n = len(tasks)
        results: dict[int, object] = {}
        attempts = [0] * n
        # (eligible_time, index) — tasks waiting to be (re)submitted.
        ready: list[tuple[float, int]] = [(0.0, i) for i in range(n)]
        # future -> (index, deadline)
        waiting: dict[Future, tuple[int, float]] = {}
        strikes = 0
        abandoned = 0
        width = getattr(self.inner, "workers", None)

        def fail(index: int, kind: str, error) -> None:
            attempts[index] += 1
            if attempts[index] >= policy.max_attempts:
                results[index] = self._quarantine(
                    index, tasks[index], attempts[index], kind, error
                )
                return
            self.manifest.retries += 1
            delay = retry_delay(
                policy, attempts[index], task_seed_of(tasks[index], index)
            )
            ready.append((time.monotonic() + delay, index))
            ready.sort()

        while len(results) < n:
            now = time.monotonic()
            # Submit every task whose backoff has elapsed.
            while ready and ready[0][0] <= now and strikes <= policy.transport_strikes:
                _, index = ready.pop(0)
                try:
                    future = self.inner.submit(fn, tasks[index])
                except _TRANSPORT_ERRORS as exc:
                    strikes += 1
                    self.manifest.transport_failures += 1
                    self.inner.recycle()
                    logger.warning(
                        "backend transport failed at submit (%r); recycled "
                        "(strike %d/%d)",
                        exc,
                        strikes,
                        policy.transport_strikes,
                    )
                    ready.append((now, index))
                    ready.sort()
                    continue
                deadline = (
                    now + policy.task_timeout
                    if policy.task_timeout is not None
                    else float("inf")
                )
                waiting[future] = (index, deadline)
            if strikes > policy.transport_strikes and not waiting:
                # Transport is gone for good: drain the rest in-process
                # (retry/quarantine still apply, timeouts cannot).
                self.manifest.degradations += 1
                logger.warning(
                    "backend transport exhausted its strikes; running "
                    "%d remaining tasks in-process",
                    len(ready),
                )
                for _, index in list(ready):
                    self._drain_one(fn, tasks, index, attempts, results, on_result)
                ready.clear()
                continue
            if not waiting:
                if not ready:
                    break  # every slot resolved (results or quarantine)
                pause = max(0.0, ready[0][0] - time.monotonic())
                time.sleep(min(pause, policy.poll_interval))
                continue
            # Wake at the earliest of: a completion, the next deadline,
            # the next backoff expiry, the poll tick.
            next_deadline = min(deadline for _, deadline in waiting.values())
            wake = next_deadline
            if ready:
                wake = min(wake, ready[0][0])
            timeout = max(0.0, min(wake - time.monotonic(), policy.poll_interval))
            done, _ = wait(list(waiting), timeout=timeout, return_when=FIRST_COMPLETED)
            for future in done:
                index, _ = waiting.pop(future)
                try:
                    result = future.result()
                except _TRANSPORT_ERRORS as exc:
                    strikes += 1
                    self.manifest.transport_failures += 1
                    self.inner.recycle()
                    logger.warning(
                        "backend transport broke mid-task (%r); recycled "
                        "(strike %d/%d)",
                        exc,
                        strikes,
                        policy.transport_strikes,
                    )
                    ready.append((time.monotonic(), index))
                    ready.sort()
                    continue
                except Exception as exc:
                    fail(index, "error", exc)
                    continue
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
            # Hung-task detection: any future past its deadline is
            # abandoned (cancelled if not yet running) and its task
            # charged a timeout failure.
            now = time.monotonic()
            for future, (index, deadline) in list(waiting.items()):
                if now < deadline:
                    continue
                del waiting[future]
                if not future.cancel():
                    abandoned += 1
                self.manifest.timeouts += 1
                fail(
                    index,
                    "timeout",
                    TimeoutError(
                        f"no result within {policy.task_timeout:g}s"
                    ),
                )
            # A pool starved by abandoned (genuinely hung) workers can
            # no longer make progress: recycle it for a fresh one.
            if width is not None and abandoned >= width:
                self.manifest.degradations += 1
                self.inner.recycle()
                abandoned = 0
                logger.warning(
                    "%d hung tasks starved the %d-worker pool; recycled it",
                    width,
                    width,
                )
        return [results[i] for i in range(n)]

    def _drain_one(self, fn, tasks, index, attempts, results, on_result):
        """Run one task synchronously with the retry/quarantine policy."""
        while True:
            try:
                result = fn(tasks[index])
            except Exception as exc:
                attempts[index] += 1
                if attempts[index] >= self.policy.max_attempts:
                    results[index] = self._quarantine(
                        index, tasks[index], attempts[index], "error", exc
                    )
                    return
                self.manifest.retries += 1
                time.sleep(
                    retry_delay(
                        self.policy, attempts[index], task_seed_of(tasks[index], index)
                    )
                )
                continue
            results[index] = result
            if on_result is not None:
                on_result(index, result)
            return
