"""Deterministic fault injection: :class:`ChaosBackend`.

A seeded wrapper around any async-capable :class:`ExecutorBackend` that
afflicts tasks with crashes, hangs and transient failures — the
first-class generalisation of the test-only ``FlakyPool`` monkeypatch.
Every fault decision derives from ``derive_seed(chaos_seed,
f"chaos:{task_seed}:{attempt}")``, so a fault pattern is a pure function
of ``(chaos seed, task seeds)``: the same campaign under the same chaos
spec fails in exactly the same places on every run, which is what lets
the test battery assert that supervised recovery folds to bit-identical
estimates.

Fault kinds
-----------
``crash``
    The task raises :class:`ChaosCrash` *instead of* running
    (crash-before-run) or *after* running, discarding the result
    (crash-after-run) — both look identical to a supervisor, but
    crash-after-run also proves retried work re-derives the same result.
``hang``
    The returned future simply never completes; only a supervisor with a
    ``task_timeout`` can recover.  Hangs are simulated at the dispatch
    layer (the future is parked, no worker is tied up), so a recycled
    backend is not actually poisoned.
``transient``
    The first :attr:`ChaosSpec.transient_attempts` attempts of an
    afflicted task fail; later attempts succeed — the retry path's bread
    and butter.
``poison``
    Every attempt fails; the only correct outcome is quarantine.

All kinds except ``poison`` are recoverable, so a supervised campaign
under any such pattern must produce bit-identical estimates to the
fault-free run.
"""

from __future__ import annotations

import random
import warnings
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigurationError
from ..mc.executor import ExecutorBackend, SerialBackend
from ..sim.rng import derive_seed
from .policy import task_seed_of

_FAULT_KINDS = ("crash", "hang", "transient", "poison")


class ChaosCrash(RuntimeError):
    """The injected task failure (never raised by real task code)."""


@dataclass(frozen=True)
class ChaosSpec:
    """A seeded fault pattern: which kinds, how often, how persistent.

    Probabilities are per-task (a task is either afflicted by one kind
    or clean, decided once from its seed); they must sum to at most 1.
    ``transient_attempts`` is how many attempts a ``crash``/``transient``
    affliction ruins before the task recovers (hangs always afflict only
    the first attempt — a retried hang would need a timeout per retry and
    proves nothing new; poison afflicts every attempt, by definition).
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    transient: float = 0.0
    poison: float = 0.0
    transient_attempts: int = 1

    def __post_init__(self) -> None:
        for kind in _FAULT_KINDS:
            p = getattr(self, kind)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(
                    f"chaos probability {kind} must be in [0, 1], got {p}"
                )
        total = self.crash + self.hang + self.transient + self.poison
        if total > 1.0 + 1e-9:
            raise ConfigurationError(
                f"chaos probabilities must sum to <= 1, got {total}"
            )
        if self.transient_attempts < 1:
            raise ConfigurationError(
                "transient_attempts must be >= 1, got "
                f"{self.transient_attempts}"
            )

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "crash": self.crash,
            "hang": self.hang,
            "transient": self.transient,
            "poison": self.poison,
            "transient_attempts": self.transient_attempts,
        }

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Build a spec from CLI syntax ``key=value[,key=value...]``.

        Example: ``seed=7,crash=0.2,hang=0.1,transient=0.3``.
        """
        fields = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in (
                "seed",
                "transient_attempts",
                *_FAULT_KINDS,
            ):
                raise ConfigurationError(
                    f"bad chaos spec component {part!r}; expected "
                    "seed=<int>, transient_attempts=<int>, or "
                    "crash/hang/transient/poison=<probability>"
                )
            try:
                fields[key] = (
                    int(value)
                    if key in ("seed", "transient_attempts")
                    else float(value)
                )
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad chaos spec value in {part!r}: {exc}"
                ) from None
        return cls(**fields)

    def fault_for(self, task_seed: int) -> str | None:
        """The fault kind afflicting a task, or ``None`` if clean.

        One uniform draw per task from a derived RNG stream; the kinds
        partition ``[0, crash + hang + transient + poison)``.
        """
        draw = random.Random(
            derive_seed(self.seed, f"chaos:{task_seed}")
        ).random()
        threshold = 0.0
        for kind in _FAULT_KINDS:
            threshold += getattr(self, kind)
            if draw < threshold:
                return kind
        return None

    def afflicts(self, task_seed: int, attempt: int) -> str | None:
        """The fault kind hitting attempt number ``attempt`` (1-based)."""
        kind = self.fault_for(task_seed)
        if kind is None:
            return None
        if kind == "poison":
            return kind
        if kind == "hang":
            return kind if attempt == 1 else None
        return kind if attempt <= self.transient_attempts else None


class ChaosBackend(ExecutorBackend):
    """Inject seeded faults between a supervisor and the real backend.

    Task functions run un-afflicted through ``inner``; the chaos layer
    decides *before* dispatch whether this attempt crashes (raise
    instead of run), crashes-after-run (run, then discard the result and
    raise), hangs (return a future that never resolves), or proceeds.
    Attempt counting is per task seed and lives here, so retries through
    a :class:`~repro.supervision.SupervisedBackend` naturally advance a
    transient fault towards recovery.
    """

    supports_submit = True

    def __init__(
        self, spec: ChaosSpec, inner: ExecutorBackend | None = None
    ) -> None:
        self.spec = spec
        self.inner = inner if inner is not None else SerialBackend()
        self._attempts: dict[int, int] = {}
        self._parked: list[Future] = []

    def open(self) -> None:
        self.inner.open()

    def close(self) -> None:
        for future in self._parked:
            future.cancel()
        self._parked.clear()
        self.inner.close()

    def recycle(self) -> None:
        self.inner.recycle()

    def _next_attempt(self, task_seed: int) -> int:
        attempt = self._attempts.get(task_seed, 0) + 1
        self._attempts[task_seed] = attempt
        return attempt

    def _crash_side(self, task_seed: int, attempt: int) -> str:
        """Crash-before-run vs crash-after-run, seed-derived."""
        draw = random.Random(
            derive_seed(self.spec.seed, f"chaos-side:{task_seed}:{attempt}")
        ).random()
        return "before" if draw < 0.5 else "after"

    def submit(self, fn: Callable, task) -> Future:
        task_seed = task_seed_of(task)
        attempt = self._next_attempt(task_seed)
        kind = self.spec.afflicts(task_seed, attempt)
        if kind == "hang":
            future: Future = Future()
            self._parked.append(future)
            return future
        if kind in ("crash", "poison", "transient"):
            side = self._crash_side(task_seed, attempt)
            if side == "before" or not self.inner.supports_submit:
                future = Future()
                future.set_exception(
                    ChaosCrash(
                        f"injected {kind} fault "
                        f"(attempt {attempt}, task seed {task_seed})"
                    )
                )
                return future
            # Crash-after-run: the work really happens (and really costs
            # a worker slot) but its result is discarded.
            inner_future = self.inner.submit(fn, task)
            future = Future()

            def discard(done: Future, future=future, kind=kind) -> None:
                exc = done.exception()
                future.set_exception(
                    exc
                    if exc is not None
                    else ChaosCrash(
                        f"injected {kind} fault after run "
                        f"(attempt {attempt}, task seed {task_seed})"
                    )
                )

            inner_future.add_done_callback(discard)
            return future
        if self.inner.supports_submit:
            return self.inner.submit(fn, task)
        future = Future()
        try:
            future.set_result(fn(task))
        except BaseException as exc:  # noqa: BLE001 - future carries it
            future.set_exception(exc)
        return future

    def map(
        self,
        fn: Callable,
        tasks: list,
        on_result: Callable[[int, object], None] | None = None,
    ) -> list:
        """Unsupervised map: faults surface as raw exceptions.

        Useful for demonstrating what chaos does *without* supervision;
        hangs cannot be expressed synchronously, so a spec that can hang
        is refused here — wrap the backend in a supervisor instead.
        """
        if self.spec.hang > 0.0:
            raise ConfigurationError(
                "ChaosSpec with hang > 0 requires a SupervisedBackend "
                "with a task_timeout; a bare map() would block forever"
            )
        results = []
        for index, task in enumerate(tasks):
            future = self.submit(fn, task)
            result = future.result()
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


def chaos_events(spec: ChaosSpec, task_seeds: list[int]) -> dict[str, int]:
    """Tally which fault kinds a spec will inject over the given seeds.

    Purely predictive (no execution): used by benchmarks and reports to
    show what a chaos run is about to absorb.
    """
    tally = {kind: 0 for kind in _FAULT_KINDS}
    tally["clean"] = 0
    for task_seed in task_seeds:
        kind = spec.fault_for(task_seed)
        tally[kind if kind is not None else "clean"] += 1
    return tally


__all__ = [
    "ChaosBackend",
    "ChaosCrash",
    "ChaosSpec",
    "chaos_events",
]
