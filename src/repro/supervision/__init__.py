"""Fault-tolerant campaign supervision.

The layer between campaign orchestration and task execution that makes a
long campaign survive the failures the paper itself is about: hung
workers (timeouts), transient faults (seeded-backoff retries), poison
tasks (quarantine + failure manifest), broken transports (degradation
ladder), and operator interrupts (crash-safe journal + resume).  The
:class:`ChaosBackend` injects all of those deterministically so every
recovery path is testable — and because retries replay exact per-task
seeds, a supervised campaign under any recoverable fault pattern folds
to bit-identical estimates vs. the fault-free run.
"""

from .backend import SupervisedBackend
from .chaos import ChaosBackend, ChaosCrash, ChaosSpec, chaos_events
from .journal import CampaignJournal, deliver_sigterm_as_interrupt
from .policy import (
    FailureManifest,
    Quarantined,
    SupervisionPolicy,
    TaskFailure,
    retry_delay,
    task_seed_of,
)

__all__ = [
    "CampaignJournal",
    "ChaosBackend",
    "ChaosCrash",
    "ChaosSpec",
    "FailureManifest",
    "Quarantined",
    "SupervisedBackend",
    "SupervisionPolicy",
    "TaskFailure",
    "chaos_events",
    "deliver_sigterm_as_interrupt",
    "retry_delay",
    "task_seed_of",
]
