"""Crash-safe campaign journal and the interrupt-to-flush plumbing.

The journal is an append-only JSONL file of completed grid points, keyed
by the same content-addressed cache keys as the result cache — an entry
is self-validating, so resuming against a changed config simply finds no
matching keys and re-runs everything.  Appends are flushed and fsynced
per record (losing at most the in-flight tasks on a hard kill), and the
whole file is compacted through :func:`~repro.cache.store.atomic_write_text`
when reopened, so a torn tail from a crash is dropped rather than
tripping the next run.

:func:`deliver_sigterm_as_interrupt` converts a polite ``SIGTERM`` (as
sent by cluster schedulers and ``timeout(1)``) into the same
``KeyboardInterrupt`` path as Ctrl-C, so the campaign layer has exactly
one interrupt story: flush what finished, raise
:class:`~repro.core.campaign.CampaignInterrupted`.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional

from ..cache.store import atomic_write_text

_FORMAT = "repro-campaign-journal/1"


class CampaignJournal:
    """Append-only record of completed campaign grid points.

    Parameters
    ----------
    path:
        The JSONL file to journal into (created on first append).
    meta:
        Campaign identity (label, seed, engine version, ...) stored in
        the header line and echoed back by :meth:`load` — callers can
        refuse to resume a journal written by a different campaign.
    """

    def __init__(self, path: Path | str, meta: Optional[dict] = None) -> None:
        self.path = Path(path)
        self.meta = dict(meta) if meta else {}
        self._handle = None
        self.appended = 0
        self.replayed = 0  # entries surviving the last open() compaction

    # ------------------------------------------------------------------
    @staticmethod
    def load(path: Path | str) -> tuple[dict, dict[str, Any]]:
        """Read a journal: ``(header meta, {key: payload})``.

        Tolerates a torn final line (crash mid-append) and skips any
        undecodable record — a journal can only ever *reduce* the work a
        resumed campaign dispatches, never break it.  A missing file is
        simply an empty journal.
        """
        path = Path(path)
        meta: dict = {}
        entries: dict[str, Any] = {}
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return meta, entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail or hand-mangled line: skip
            if not isinstance(record, dict):
                continue
            if record.get("format") == _FORMAT:
                meta = record.get("meta", {})
                continue
            key = record.get("key")
            if isinstance(key, str) and "payload" in record:
                entries[key] = record["payload"]
        return meta, entries

    # ------------------------------------------------------------------
    def open(self) -> dict[str, Any]:
        """Compact any existing journal and open for appending.

        Returns the surviving ``{key: payload}`` entries (the resume
        set).  Compaction rewrites the file atomically with a fresh
        header + the surviving records, so torn tails and stale headers
        from previous runs are gone before new appends start.
        """
        _, entries = self.load(self.path)
        self.replayed = len(entries)
        lines = [json.dumps({"format": _FORMAT, "meta": self.meta})]
        lines.extend(
            json.dumps({"key": key, "payload": payload})
            for key, payload in entries.items()
        )
        atomic_write_text(self.path, "\n".join(lines) + "\n")
        self._handle = open(self.path, "a", encoding="utf-8")
        return entries

    def append(self, key: str, payload: Any) -> None:
        """Journal one completed grid point (flushed and fsynced)."""
        if self._handle is None:
            raise RuntimeError("journal not open")
        self._handle.write(json.dumps({"key": key, "payload": payload}) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.appended += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        self.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@contextmanager
def deliver_sigterm_as_interrupt() -> Iterator[None]:
    """Raise ``KeyboardInterrupt`` in the main thread on ``SIGTERM``.

    Active only inside the ``with`` block; the previous handler is
    restored on exit.  A no-op outside the main thread (signal handlers
    can only be installed there) and on platforms without ``SIGTERM``.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    try:
        previous = signal.getsignal(signal.SIGTERM)
    except (AttributeError, ValueError):  # pragma: no cover - platform
        yield
        return

    def handler(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
