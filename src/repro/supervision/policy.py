"""Supervision policy: retry/backoff/timeout knobs and failure records.

The policy is deliberately a frozen dataclass with an ``as_dict``: it
participates in campaign records (so a supervised run documents the
contract it ran under) and its jitter is *derived from the task seed*,
never drawn from a global RNG — two supervised runs of the same campaign
retry on identical schedules, which is what makes recovery reproducible
enough to assert bit-identical estimates under injected faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional

from ..cache.store import atomic_write_text
from ..errors import ConfigurationError
from ..sim.rng import derive_seed


@dataclass(frozen=True)
class SupervisionPolicy:
    """How a :class:`~repro.supervision.SupervisedBackend` treats failure.

    Attributes
    ----------
    max_attempts:
        Total tries per task (first run + retries).  A task that fails
        this many times is *quarantined* — recorded as a
        :class:`TaskFailure` instead of killing the campaign.
    task_timeout:
        Per-task wall-clock budget in seconds; a task still running at
        its deadline counts as a timeout failure and is retried.
        ``None`` disables hung-task detection (and is the only option on
        synchronous backends, which cannot be interrupted mid-task).
    backoff_base, backoff_cap:
        Exponential-backoff schedule: attempt ``k`` waits
        ``min(base * 2**(k-1), cap)`` seconds, scaled by the jitter.
    backoff_jitter:
        Fractional jitter width: the delay is scaled by a factor in
        ``[1 - jitter, 1 + jitter]`` derived deterministically from the
        task seed and attempt number (see :func:`retry_delay`).
    poll_interval:
        Granularity of the supervision loop's waits, in seconds.
    transport_strikes:
        Backend-transport failures (pool refused to start, broken pool)
        tolerated before the supervisor stops re-submitting and drains
        the remaining tasks synchronously in-process.
    """

    max_attempts: int = 3
    task_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    backoff_jitter: float = 0.25
    poll_interval: float = 0.02
    transport_strikes: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ConfigurationError(
                "need 0 <= backoff_base <= backoff_cap, got "
                f"{self.backoff_base}, {self.backoff_cap}"
            )
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ConfigurationError(
                f"backoff_jitter must be in [0, 1), got {self.backoff_jitter}"
            )
        if self.poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )
        if self.transport_strikes < 0:
            raise ConfigurationError(
                f"transport_strikes must be >= 0, got {self.transport_strikes}"
            )

    def as_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "task_timeout": self.task_timeout,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "backoff_jitter": self.backoff_jitter,
            "poll_interval": self.poll_interval,
            "transport_strikes": self.transport_strikes,
        }


def task_seed_of(task: Any, fallback: int = 0) -> int:
    """The task's own seed, for deterministic jitter derivation.

    Campaign tasks carry their seeds (``seeds`` batches on
    :class:`~repro.core.experiment.ProtocolTask`, ``seed`` on
    :class:`~repro.mc.executor.MCTask`); anything else falls back to the
    task's index so the schedule stays deterministic regardless.
    """
    seeds = getattr(task, "seeds", None)
    if seeds:
        return int(seeds[0])
    seed = getattr(task, "seed", None)
    if isinstance(seed, int):
        return seed
    return fallback


def retry_delay(policy: SupervisionPolicy, attempt: int, task_seed: int) -> float:
    """Backoff before retry number ``attempt`` (1-based), with jitter.

    The jitter factor comes from a throwaway RNG seeded from
    ``(task_seed, attempt)`` via the same :func:`~repro.sim.rng.derive_seed`
    discipline the simulator uses — the recovery schedule of a supervised
    campaign is a pure function of its seeds.
    """
    if attempt < 1:
        raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
    base = min(policy.backoff_base * 2.0 ** (attempt - 1), policy.backoff_cap)
    if policy.backoff_jitter == 0.0 or base == 0.0:
        return base
    draw = random.Random(derive_seed(task_seed, f"retry:{attempt}")).random()
    return base * (1.0 - policy.backoff_jitter + 2.0 * policy.backoff_jitter * draw)


def describe_task(task: Any) -> str:
    """Short human label for a task in failure records."""
    spec = getattr(task, "spec", None)
    label = getattr(spec, "label", None)
    if label is not None:
        return str(label)
    return type(task).__name__


@dataclass(frozen=True)
class TaskFailure:
    """One quarantined task: what it was and how it died.

    Recorded in the :class:`FailureManifest` after a task exhausts its
    :attr:`SupervisionPolicy.max_attempts`; quarantined work is
    *manifested*, never a silent gap in the campaign.
    """

    index: int
    label: str
    seeds: tuple[int, ...]
    attempts: int
    kind: str  # "error" | "timeout"
    error: str

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "seeds": list(self.seeds),
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
        }


class Quarantined:
    """Result-slot placeholder for a quarantined task.

    A supervised ``map`` still returns exactly one slot per task, in
    input order; quarantined slots hold this wrapper around the
    :class:`TaskFailure` so callers can account for the lost work
    explicitly instead of mis-indexing the survivors.
    """

    __slots__ = ("failure",)

    def __init__(self, failure: TaskFailure) -> None:
        self.failure = failure

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Quarantined({self.failure.label}, kind={self.failure.kind})"


@dataclass
class FailureManifest:
    """Mutable tally of everything a supervised run absorbed.

    One manifest spans a whole campaign (many ``map`` rounds); the
    campaign result and record surface its counters, and :meth:`write`
    persists the full typed failure list with the same atomic-write
    discipline as the result cache.
    """

    failures: list[TaskFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    transport_failures: int = 0
    degradations: int = 0

    @property
    def quarantined(self) -> int:
        return len(self.failures)

    def record(self, failure: TaskFailure) -> None:
        self.failures.append(failure)

    def as_dict(self) -> dict:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "transport_failures": self.transport_failures,
            "degradations": self.degradations,
            "quarantined": self.quarantined,
            "failures": [failure.as_dict() for failure in self.failures],
        }

    def write(self, path) -> None:
        """Persist the manifest as JSON (atomic temp-file + rename)."""
        import json
        from pathlib import Path

        atomic_write_text(Path(path), json.dumps(self.as_dict(), indent=2) + "\n")
