#!/usr/bin/env python3
"""Scenario matrix: compare named scenario compositions side by side.

The scenario subsystem turns the paper's single threat model into a
composable space: a registered scenario declares a system grid, a
timing preset, an adversary strategy, a seeded fault plan and a
workload, and the campaign machinery runs it bit-deterministically for
any worker fan-out.  This example runs a few built-ins on a common S2
grid point and prints how each composition shifts survival — then shows
how to declare and run a scenario of your own.

Run:  python examples/scenario_matrix.py
"""

from __future__ import annotations

from repro.core.campaign import run_scenario_campaign
from repro.scenarios import (
    AdversarySpec,
    FaultPlanSpec,
    ScenarioSpec,
    get_scenario,
    register_scenario,
)

TRIALS = 12
MAX_STEPS = 60
SEED = 7


def run_one(scenario, label=None) -> None:
    # Project onto one common grid point so the rows are comparable.
    variant = scenario.replace(systems=("s2",), schemes=("so",))
    result = run_scenario_campaign(
        variant, trials=TRIALS, max_steps=MAX_STEPS, seed=SEED, workers=2
    )
    estimate = result.estimates[0]
    print(
        f"{label or scenario.name:26s} "
        f"adversary={scenario.adversary.kind:11s} "
        f"faults={scenario.faults.kind:18s} "
        f"KM mean {estimate.km_mean_steps:5.1f} steps, "
        f"{estimate.censored}/{estimate.stats.n} survived the budget"
    )


def main() -> None:
    print(
        f"S2SO under different scenarios "
        f"({TRIALS} seeds, budget {MAX_STEPS} steps):\n"
    )
    for name in (
        "paper-baseline",
        "crash-storm-under-attack",
        "lossy-wan",
        "stealth-prober",
        "coordinated-attacker",
        "combined-stress",
    ):
        run_one(get_scenario(name))

    # ------------------------------------------------------------------
    # Declaring your own scenario: decorate a factory, then run it by
    # name anywhere (API, CLI `scenario run`, benches).
    # ------------------------------------------------------------------
    @register_scenario
    def flaky_datacenter() -> ScenarioSpec:
        return ScenarioSpec(
            name="example-flaky-datacenter",
            description="Stealth probing while the server tier flaps.",
            systems=("s2",),
            schemes=("so",),
            adversary=AdversarySpec(kind="stealth", duty_fraction=0.25),
            faults=FaultPlanSpec(kind="crash_storm", rate=0.6),
        )

    print()
    run_one(get_scenario("example-flaky-datacenter"), label="(yours) flaky-datacenter")


if __name__ == "__main__":
    main()
