#!/usr/bin/env python3
"""Why FORTRESS exists: replicating a non-deterministic service.

The paper's motivation (§1): SMR requires the service to be a
deterministic state machine; identifying and resolving every source of
non-determinism is costly.  Primary-backup replication ships the
primary's state instead of re-executing, so it replicates *any* service
— but it cannot tolerate intrusions, which is what FORTRESS fixes.

This example replicates a session-token service (each login mints a
random token — inherent non-determinism) three ways:

1. naively under SMR — replicas diverge and clients cannot assemble
   f+1 matching responses;
2. under plain primary-backup (S1) — works;
3. under FORTRESS (S2) — works *and* is intrusion-resilient.

Run:  python examples/nondeterministic_service.py
"""

from __future__ import annotations

import random

from repro import Scheme, add_clients, build_system, s1, s2
from repro.replication.state_machine import SessionTokenService


def show_divergence() -> None:
    print("=" * 64)
    print("1. The same login executed on four 'SMR' replicas")
    print("=" * 64)
    # Four replicas, each with its own entropy source (that is what
    # OS-level non-determinism means), execute the identical request.
    replicas = [SessionTokenService(seed=1000 + i) for i in range(4)]
    request = {"op": "login", "user": "alice"}
    tokens = [replica.apply(dict(request))["token"] for replica in replicas]
    for i, token in enumerate(tokens):
        print(f"  replica-{i} minted token {token}")
    assert len(set(tokens)) == 4
    digests = {replica.digest() for replica in replicas}
    print(
        f"  => {len(set(tokens))} different tokens, "
        f"{len(digests)} divergent replica states"
    )
    print("  => no f+1 matching responses exist: the DSM requirement is violated.")
    print("  (repro.core.build_system refuses to deploy this service on S0")
    print("   for exactly this reason.)")
    print()


def run_tier(spec, label: str) -> None:
    print("=" * 64)
    print(label)
    print("=" * 64)
    deployed = build_system(
        spec,
        seed=21,
        service_factory=lambda i: SessionTokenService(seed=5000 + i),
    )
    clients = add_clients(deployed, 1)
    deployed.start()
    deployed.sim.run(until=8.0)
    client = clients[0]
    digests = {server.service.digest() for server in deployed.servers}
    print(
        f"  client responses: {client.responses_ok} valid, "
        f"{client.failures} failed"
    )
    print(
        f"  replica state digests agree: {len(digests) == 1} "
        f"(primary's tokens shipped via state updates)"
    )
    assert len(digests) == 1
    assert client.responses_ok > 0
    print()


def main() -> None:
    show_divergence()
    rng = random.Random(0)

    def login_heavy(i: int, rng: random.Random) -> dict:
        if i % 2 == 1:
            return {"op": "login", "user": f"user{rng.randrange(8)}"}
        return {"op": "logout", "user": f"user{rng.randrange(8)}"}

    run_tier(
        s1(Scheme.PO, alpha=0.001, entropy_bits=8),
        "2. The same service under primary-backup (S1): replicates fine",
    )
    run_tier(
        s2(Scheme.PO, alpha=0.001, kappa=0.5, entropy_bits=8),
        "3. ...and under FORTRESS (S2): replicates fine AND is fortified",
    )
    print("Conclusion (paper §7): if DSM compliance is costly or infeasible,")
    print("primary-backup replication with FORTRESS is the way to add")
    print("intrusion resilience.")


if __name__ == "__main__":
    main()
