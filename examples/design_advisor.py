#!/usr/bin/env python3
"""Design advisor: SMR or FORTRESS?  (the paper's §7 decision procedure)

Given a deployment's parameters — key entropy, attacker strength, how
well proxies can throttle indirect probing (κ), and whether the service
can feasibly be made a deterministic state machine — this tool computes
the expected lifetime of every candidate architecture and prints the
paper's recommendation with the supporting numbers.

Run:  python examples/design_advisor.py [--alpha A] [--kappa K]
                                        [--entropy-bits B] [--dsm-ready]
"""

from __future__ import annotations

import argparse

from repro import lifetimes_at, render_table
from repro.analysis.orderings import kappa_crossover_s2_vs_s1
from repro.reporting.tables import format_quantity


def recommend(alpha: float, kappa: float, dsm_ready: bool) -> tuple[str, str]:
    """Return (architecture, rationale) per the paper's conclusions."""
    el = lifetimes_at(alpha, kappa)
    if dsm_ready:
        return (
            "S0 + proactive obfuscation (SMR)",
            "DSM compliance is available, and S0PO dominates every other "
            f"candidate (EL {format_quantity(el['S0PO'])} vs "
            f"{format_quantity(el['S2PO'])} for FORTRESS) whenever kappa > 0.",
        )
    kappa_star = kappa_crossover_s2_vs_s1(alpha)
    if kappa <= kappa_star:
        return (
            "S2: FORTRESS (proxies + PB + proactive obfuscation)",
            "DSM compliance is not available; with kappa = "
            f"{kappa:g} <= kappa* = {kappa_star:.4f}, the proxy tier "
            f"stretches the lifetime to {format_quantity(el['S2PO'])} steps "
            f"vs {format_quantity(el['S1PO'])} for plain PB+PO.",
        )
    return (
        "S1 + proactive obfuscation (plain PB)",
        f"Proxies cannot throttle this attacker (kappa = {kappa:g} > "
        f"kappa* = {kappa_star:.4f}); their own attack surface makes "
        "FORTRESS a net loss — obfuscate the PB tier directly.",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--alpha",
        type=float,
        default=1e-3,
        help="per-step direct attack success probability",
    )
    parser.add_argument(
        "--kappa",
        type=float,
        default=0.5,
        help="indirect attack coefficient the proxies achieve",
    )
    parser.add_argument(
        "--entropy-bits",
        type=int,
        default=16,
        help="randomization key entropy (display only)",
    )
    parser.add_argument(
        "--dsm-ready",
        action="store_true",
        help="the service already is a deterministic state machine",
    )
    args = parser.parse_args()

    el = lifetimes_at(args.alpha, args.kappa)
    chi = 1 << args.entropy_bits
    print(
        f"Deployment parameters: alpha={args.alpha:g} "
        f"(omega={args.alpha * chi:.1f} probes/step at chi=2^{args.entropy_bits}), "
        f"kappa={args.kappa:g}, DSM-ready={args.dsm_ready}"
    )
    print()
    rows = [
        [
            "S0PO",
            "4-replica SMR, fresh keys each step",
            format_quantity(el["S0PO"]),
            "needs DSM" if not args.dsm_ready else "available",
        ],
        [
            "S2PO",
            "FORTRESS: 3 proxies + 3 PB servers",
            format_quantity(el["S2PO"]),
            "any service",
        ],
        [
            "S1PO",
            "3-server PB, fresh keys each step",
            format_quantity(el["S1PO"]),
            "any service",
        ],
        [
            "S1SO",
            "3-server PB, recovery only",
            format_quantity(el["S1SO"]),
            "any service",
        ],
        [
            "S0SO",
            "4-replica SMR, recovery only",
            format_quantity(el["S0SO"]),
            "needs DSM" if not args.dsm_ready else "available",
        ],
    ]
    print(
        render_table(
            ["system", "architecture", "EL (steps)", "service constraint"],
            rows,
            title="Candidate architectures",
        )
    )
    print()
    choice, rationale = recommend(args.alpha, args.kappa, args.dsm_ready)
    print(f"RECOMMENDATION: {choice}")
    print(f"  {rationale}")
    print()
    print("Least effective option on every input: SMR with proactive recovery")
    print("(S0SO) — the paper's closing observation.")


if __name__ == "__main__":
    main()
