#!/usr/bin/env python3
"""Quickstart: deploy FORTRESS, serve clients, survive an attack.

Builds the paper's S2 system (3 proxies + 3 primary-backup servers under
proactive obfuscation), runs a legitimate client workload alongside a
de-randomization attacker, and reports what happened — then compares the
three evaluation methods (analytic / Monte-Carlo / protocol simulation)
on the same configuration.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Scheme,
    add_clients,
    attach_attacker,
    build_system,
    expected_lifetime,
    mc_expected_lifetime,
    s2,
)
from repro.core.experiment import estimate_protocol_lifetime


def main() -> None:
    # A laptop-scale configuration: 2^8 = 256 keys so the attack
    # resolves in seconds of simulated time.
    spec = s2(Scheme.PO, alpha=0.05, kappa=0.5, entropy_bits=8)
    print(
        f"System under test : {spec.label} "
        f"(n_s={spec.n_servers} PB servers, n_p={spec.n_proxies} proxies)"
    )
    print(f"Key space         : chi = 2^{spec.entropy_bits} = {spec.chi} keys")
    print(
        f"Attacker strength : omega = {spec.omega:.1f} probes/step "
        f"(alpha = {spec.alpha}), kappa = {spec.kappa}"
    )
    print()

    # ------------------------------------------------------------------
    # One live run: workload + attacker, watched by the monitor.
    # ------------------------------------------------------------------
    deployed = build_system(spec, seed=42, stop_on_compromise=False)
    attacker = attach_attacker(deployed)
    clients = add_clients(deployed, count=2)
    deployed.start()
    deployed.sim.run(until=60.0)

    print("--- one live run (60 unit time-steps) ---")
    client = clients[0]
    print(
        f"client responses  : {client.responses_ok} valid, "
        f"{client.responses_corrupted} corrupted, {client.failures} failed"
    )
    print(
        f"attacker effort   : {attacker.probes_sent_direct} direct probes, "
        f"{attacker.probes_sent_indirect} indirect probes"
    )
    for proxy in deployed.proxies:
        flagged = proxy.detection.is_blacklisted(attacker.name)
        print(
            f"{proxy.name:<10}: {proxy.detection.invalid_count(attacker.name)} "
            f"invalid requests logged, blacklisted={flagged}"
        )
    monitor = deployed.monitor
    if monitor.is_compromised:
        print(
            f"SYSTEM COMPROMISED after {monitor.steps_survived} whole steps "
            f"({monitor.cause})"
        )
    else:
        print("system survived the whole run")
    print()

    # ------------------------------------------------------------------
    # The three evaluation methods on the same spec.
    # ------------------------------------------------------------------
    print("--- expected lifetime, three ways ---")
    analytic = expected_lifetime(spec)
    print(f"analytic          : {analytic:.2f} steps")
    mc = mc_expected_lifetime(spec, trials=50_000, seed=7)
    print(
        f"Monte-Carlo       : {mc.mean:.2f} steps "
        f"[95% CI {mc.stats.ci_low:.2f}, {mc.stats.ci_high:.2f}]"
    )
    protocol = estimate_protocol_lifetime(spec, trials=15, max_steps=400, seed0=100)
    print(
        f"protocol-level    : {protocol.mean_steps:.2f} steps "
        f"({protocol.stats.n} seeds, {protocol.censored} censored)"
    )


if __name__ == "__main__":
    main()
