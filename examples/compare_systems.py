#!/usr/bin/env python3
"""Reproduce the paper's evaluation from the command line.

Prints Figure 1 (EL vs α for the five systems), a Figure 2 cross-section
(EL of S2PO vs κ), the §6 trend verification, and the κ crossovers that
quantify the paper's "κ ≤ 0.9" and "except when κ = 0" conditions.

Run:  python examples/compare_systems.py [--mc-trials N]
"""

from __future__ import annotations

import argparse

from repro import (
    Scheme,
    kappa_crossover_s2_vs_s0,
    kappa_crossover_s2_vs_s1,
    render_series_table,
    render_table,
    s2,
    verify_paper_trends,
)
from repro.mc.sweeps import (
    FIGURE1_ALPHAS,
    FIGURE2_KAPPAS,
    figure1_series,
    sweep_kappa,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mc-trials",
        type=int,
        default=None,
        help="use Monte-Carlo with N trials per point instead of the analytic formulas",
    )
    parser.add_argument("--kappa", type=float, default=0.5, help="kappa for Figure 1")
    args = parser.parse_args()

    method = f"Monte-Carlo, {args.mc_trials} trials" if args.mc_trials else "analytic"

    print(render_series_table(
        figure1_series(FIGURE1_ALPHAS, kappa=args.kappa, trials=args.mc_trials),
        x_header="alpha",
        title=f"Figure 1 ({method}): expected lifetime vs alpha "
              f"[chi=2^16, kappa={args.kappa}]",
        with_ci=args.mc_trials is not None,
    ))
    print()

    series = sweep_kappa(
        s2(Scheme.PO, alpha=1e-3), FIGURE2_KAPPAS, trials=args.mc_trials
    )
    print(render_series_table(
        [series],
        x_header="kappa",
        title=f"Figure 2 cross-section ({method}): EL of S2PO vs kappa at alpha=1e-3",
        with_ci=args.mc_trials is not None,
    ))
    print()

    reports = verify_paper_trends(kappa=args.kappa)
    print(render_table(
        ["trend", "statement", "verdict", "evidence"],
        [[r.name, r.statement, "HOLDS" if r.holds else "FAILS", r.detail]
         for r in reports],
        title="Section 6 trends",
    ))
    print()

    rows = []
    for alpha in (1e-4, 1e-3, 1e-2):
        rows.append([
            f"{alpha:g}",
            f"{kappa_crossover_s2_vs_s1(alpha):.6f}",
            f"{kappa_crossover_s2_vs_s0(alpha):.3e}",
        ])
    print(render_table(
        ["alpha", "kappa* vs S1PO", "kappa* vs S0PO"],
        rows,
        title="Kappa crossovers (FORTRESS wins below kappa*)",
    ))
    print()
    print("Summary ordering (paper, Section 6):")
    print("  S0PO --kappa>0--> S2PO --kappa<=0.9--> S1PO -> S1SO -> S0SO")


if __name__ == "__main__":
    main()
