#!/usr/bin/env python3
"""Anatomy of a de-randomization attack — and how proxies blunt it.

Act 1 reproduces the Shacham-et-al.-style attack the paper builds on
(§2.1): a forking server behind address-space randomization, an attacker
probing keys over direct TCP connections, observing crashes through
connection closures, until the key is found.

Act 2 puts the same server behind FORTRESS proxies with frequency
analysis: full-rate probing gets the attacker blacklisted in seconds,
and the sustainable (paced) rate is exactly the κ·ω the paper models.

Run:  python examples/derandomization_attack.py
"""

from __future__ import annotations

from repro import DetectionPolicy, Scheme, kappa_for_policy, s1, s2
from repro.core.builders import attach_attacker, build_system


def act_one() -> None:
    print("=" * 64)
    print("Act 1: direct de-randomization of an unprotected server (S1SO)")
    print("=" * 64)
    spec = s1(Scheme.SO, alpha=0.05, entropy_bits=8)
    print(f"key space: {spec.chi} keys; attacker: {spec.omega:.1f} probes/step")
    deployed = build_system(spec, seed=11)
    attacker = attach_attacker(deployed)
    deployed.start()
    deployed.sim.run(until=100.0)

    primary = deployed.servers[0]
    monitor = deployed.monitor
    print(f"probes fired            : {attacker.probes_sent_direct}")
    print(
        f"server crashes caused   : {primary.crash_count} "
        f"(each respawned by the forking daemon, key preserved)"
    )
    print(
        f"distinct keys eliminated: " f"{attacker.pool('server-tier').tried_count - 1}"
    )
    print(
        f"key discovered          : {attacker.pool('server-tier').known_key} "
        f"(actual: {primary.address_space.key})"
    )
    print(
        f"system compromised after {monitor.steps_survived} whole steps: "
        f"{monitor.cause}"
    )
    print()


def act_two() -> None:
    print("=" * 64)
    print("Act 2: the same attacker against FORTRESS proxies")
    print("=" * 64)
    policy = DetectionPolicy(window=10.0, threshold=10)
    # Unpaced: the attacker pushes indirect probes at full rate.
    greedy = s2(Scheme.SO, alpha=0.05, kappa=1.0, entropy_bits=8)
    deployed = build_system(
        greedy, seed=12, detection_policy=policy, stop_on_compromise=False
    )
    attacker = attach_attacker(deployed)
    deployed.start()
    deployed.sim.run(until=30.0)
    flagged = [
        p.name for p in deployed.proxies if p.detection.is_blacklisted(attacker.name)
    ]
    print(f"full-rate indirect probing (kappa=1.0):")
    print(f"  probes through proxies: {attacker.probes_sent_indirect}")
    print(f"  blacklisted at        : {flagged or 'none'}")
    print("  (note: the attacker rotates probes across the proxies — the")
    print("   paper's 'load-balancing' evasion, §2.2 — so each proxy only")
    print("   sees 1/n_p of the stream; the threshold must account for it)")
    print()

    # Paced: the best response is to stay below threshold/window.
    kappa = kappa_for_policy(policy, omega=greedy.omega, period=1.0)
    print(
        f"the detection policy (window={policy.window}, "
        f"threshold={policy.threshold}) caps the attacker at "
        f"{policy.max_sustainable_rate:.1f} probes/unit time"
    )
    print(f"=> effective indirect coefficient kappa = {kappa:.3f}")
    paced = s2(Scheme.SO, alpha=0.05, kappa=kappa * 0.9, entropy_bits=8)
    deployed = build_system(
        paced, seed=13, detection_policy=policy, stop_on_compromise=False
    )
    attacker = attach_attacker(deployed)
    deployed.start()
    deployed.sim.run(until=30.0)
    flagged = [
        p.name for p in deployed.proxies if p.detection.is_blacklisted(attacker.name)
    ]
    print(f"paced probing at 0.9*kappa*omega:")
    print(f"  probes through proxies: {attacker.probes_sent_indirect}")
    print(f"  blacklisted at        : {flagged or 'none'}")
    print()
    print("This forced pacing is why indirect attacks carry the kappa")
    print("coefficient (Definition 5), and why the fortified system's")
    print("lifetime stretches by ~1/kappa (Figure 2).")


def main() -> None:
    act_one()
    act_two()


if __name__ == "__main__":
    main()
