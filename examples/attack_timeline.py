#!/usr/bin/env python3
"""Watch an attack unfold: a traced, open-loop FORTRESS run.

Deploys S2 under start-up-only randomization (the weakest FORTRESS
configuration), drives it with an open-loop Zipf workload, mounts the
full attack campaign, and prints the traced timeline: epoch refreshes,
node compromises, and the system-down verdict — followed by the service
metrics the legitimate clients observed along the way.

Run:  python examples/attack_timeline.py
"""

from __future__ import annotations

from repro import Scheme, attach_attacker, build_system, s2
from repro.sim.trace import TraceRecorder
from repro.workloads import OpenLoopClient, ZipfKeys, kv_body_factory


def main() -> None:
    spec = s2(Scheme.SO, alpha=0.08, kappa=0.5, entropy_bits=8)
    print(
        f"{spec.label}: chi={spec.chi}, omega={spec.omega:.1f} probes/step, "
        f"kappa={spec.kappa}"
    )
    deployed = build_system(spec, seed=99, stop_on_compromise=False)
    trace = TraceRecorder(deployed.sim, limit=None)
    trace.attach_deployment(deployed)
    attach_attacker(deployed)

    client = OpenLoopClient(
        deployed.sim,
        deployed.network,
        deployed.authority,
        mode="fortress",
        targets=deployed.proxy_names,
        arrival_rate=15.0,
        body_factory=kv_body_factory(ZipfKeys(n_keys=32, s=1.1), read_ratio=0.75),
    )
    deployed.network.register(client)

    deployed.start()
    client.start()
    deployed.sim.run(until=30.0)

    print()
    print("--- compromise timeline (first intrusion per node) ---")
    seen: set[str] = set()
    interesting = []
    for event in sorted(
        trace.events(category="compromise") + trace.events(category="system-down"),
        key=lambda e: e.time,
    ):
        if event.category == "system-down" or event.subject not in seen:
            seen.add(event.subject)
            interesting.append(event)
    print(trace.render_timeline(interesting) or "(nothing)")
    recompromises = trace.count("compromise") - len(seen - {"monitor"})
    print(
        f"(+ {recompromises} instant re-compromises of nodes whose keys "
        f"the attacker already knows — SO recovery does not change keys)"
    )

    print()
    print("--- what the monitor concluded ---")
    monitor = deployed.monitor
    if monitor.is_compromised:
        print(f"system compromised after {monitor.steps_survived} whole steps")
        print(f"cause: {monitor.cause}")
    else:
        print("system survived the run")

    print()
    print("--- what legitimate clients experienced ---")
    print(
        f"requests sent : {client.requests_sent} "
        f"(open loop, {client.arrival_rate}/unit)"
    )
    print(f"valid         : {client.responses_ok}")
    print(
        f"corrupted     : {client.responses_corrupted} "
        f"(attacker-controlled primary answering)"
    )
    print(f"timeouts      : {client.timeouts}")
    if client.latencies:
        print(
            f"p50 / p95 lat : {client.latency_percentile(0.5) * 1000:.1f} ms / "
            f"{client.latency_percentile(0.95) * 1000:.1f} ms"
        )
    print()
    print(
        f"epochs traced : {trace.count('epoch')}, "
        f"state changes: {trace.count('state')}, "
        f"node compromises: {trace.count('compromise')}"
    )


if __name__ == "__main__":
    main()
